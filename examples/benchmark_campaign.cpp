// Benchmark campaign: the statistically sound end-to-end workflow a
// benchmark operator would run with vdbench —
//   1. pick the metric for the scenario (here: pre-picked from E7),
//   2. run every tool over repeated independent workloads,
//   3. report means with confidence intervals,
//   4. only claim "tool A beats tool B" when the difference is
//      significant.
//
//   $ ./benchmark_campaign [runs]
#include <cstdlib>
#include <iostream>

#include "report/table.h"
#include "vdsim/benchmark.h"
#include "vdsim/suite.h"

int main(int argc, char** argv) {
  using namespace vdbench;

  vdsim::SuiteConfig cfg;
  cfg.workload.num_services = 60;
  cfg.workload.prevalence = 0.12;
  cfg.runs = argc > 1 ? static_cast<std::size_t>(
                            std::strtoull(argv[1], nullptr, 10))
                      : 15;
  cfg.costs = vdsim::CostModel{20.0, 1.0};  // security-critical context

  // In the security-critical scenario the E7 analysis recommends the
  // cost-based metric; we carry F1 alongside for comparison.
  const std::vector<core::MetricId> metrics = {
      core::MetricId::kNormalizedExpectedCost, core::MetricId::kFMeasure};

  std::cout << "Campaign: " << cfg.runs << " independent workloads, "
            << cfg.workload.num_services
            << " services each, cost model FN:FP = 20:1\n\n";

  stats::Rng rng(2026);
  const vdsim::SuiteResult suite =
      run_suite(vdsim::builtin_tools(), metrics, cfg, rng);

  report::Table table({"tool", "NEC mean", "NEC 95% CI", "F1 mean"});
  for (const vdsim::ToolEstimates& tool : suite.tools) {
    const vdsim::MetricEstimate& nec =
        tool.metric(core::MetricId::kNormalizedExpectedCost);
    const vdsim::MetricEstimate& f1 =
        tool.metric(core::MetricId::kFMeasure);
    table.add_row({tool.tool_name, report::format_value(nec.ci.estimate),
                   "[" + report::format_value(nec.ci.lower) + ", " +
                       report::format_value(nec.ci.upper) + "]",
                   report::format_value(f1.ci.estimate)});
  }
  table.print(std::cout);

  std::cout << "\nDefensible claims (p < 0.05 on the scenario metric):\n";
  std::size_t claims = 0;
  for (const vdsim::PairwiseComparison& cmp : suite.comparisons) {
    if (cmp.metric != core::MetricId::kNormalizedExpectedCost) continue;
    if (!cmp.significant()) continue;
    // NEC is lower-better.
    const bool a_wins = cmp.mean_a < cmp.mean_b;
    std::cout << "  " << (a_wins ? cmp.tool_a : cmp.tool_b) << " beats "
              << (a_wins ? cmp.tool_b : cmp.tool_a)
              << " (p=" << report::format_value(cmp.welch.p_value, 4)
              << ")\n";
    ++claims;
  }
  if (claims == 0)
    std::cout << "  none — increase runs to resolve the remaining pairs\n";
  std::cout << "\nPairs not resolvable at " << cfg.runs << " runs:\n";
  for (const vdsim::PairwiseComparison& cmp : suite.comparisons) {
    if (cmp.metric != core::MetricId::kNormalizedExpectedCost) continue;
    if (cmp.significant()) continue;
    std::cout << "  " << cmp.tool_a << " vs " << cmp.tool_b
              << " (p=" << report::format_value(cmp.welch.p_value, 3)
              << ")\n";
  }

  // The same campaign through the capstone API: a self-describing
  // benchmark whose ranking carries compact-letter significance groups.
  std::cout << "\n--- capstone: execute_benchmark ---\n";
  vdsim::BenchmarkDefinition def;
  def.name = "security-critical web-services benchmark";
  def.primary_metric = core::MetricId::kNormalizedExpectedCost;
  def.secondary_metrics = {core::MetricId::kFMeasure};
  def.protocol = cfg;
  stats::Rng brng(2027);
  const vdsim::BenchmarkReport report =
      execute_benchmark(def, vdsim::builtin_tools(), brng);
  std::cout << report.render();
  return 0;
}
