// Expert panel walkthrough: simulate a panel of security experts judging
// the importance of metric-selection criteria for a scenario, extract AHP
// weights with consistency checking, and produce the MCDA metric ranking —
// stage 3 of the DSN'15 study, end to end on one scenario.
//
//   $ ./expert_panel [scenario-key] [noise]
//       scenario-key: s1_critical | s2_budget | s3_balanced | s4_rare |
//                     s5_regression      (default s1_critical)
//       noise: expert judgment noise, default 0.15
#include <cstdlib>
#include <iostream>

#include "core/validation.h"
#include "report/table.h"
#include "stats/rank.h"

int main(int argc, char** argv) {
  using namespace vdbench;

  const std::string key = argc > 1 ? argv[1] : "s1_critical";
  const double noise = argc > 2 ? std::strtod(argv[2], nullptr) : 0.15;
  const core::Scenario& scenario = core::builtin_scenario(key);
  std::cout << "Scenario: " << scenario.name << "\n"
            << scenario.description << "\n\n";

  // Stage 1 + 2 at reduced size (the bench binaries run full size).
  core::AssessmentConfig acfg;
  acfg.trials = 120;
  acfg.asymptotic_items = 100'000;
  stats::Rng arng(31);
  const auto assessments = core::PropertyAssessor(acfg).assess_all(arng);
  core::ScenarioAnalyzer::Config ecfg;
  ecfg.pair_trials = 600;
  stats::Rng erng(32);
  const auto effectiveness = core::ScenarioAnalyzer(ecfg).analyze(
      scenario, core::ranking_metrics(), erng);

  // Stage 3: the simulated expert panel.
  core::ValidationConfig vcfg;
  vcfg.judgment_noise = noise;
  const core::McdaValidator validator(vcfg);
  stats::Rng vrng(33);
  const core::ValidationOutcome out =
      validator.validate(scenario, assessments, effectiveness, vrng);

  std::cout << "Panel of " << vcfg.expert_count
            << " experts (judgment noise " << noise << ")\n";
  report::Table experts({"expert", "consistency ratio", "acceptable"});
  for (std::size_t e = 0; e < out.expert_consistency_ratios.size(); ++e) {
    const double cr = out.expert_consistency_ratios[e];
    experts.add_row({"expert-" + std::to_string(e + 1),
                     report::format_value(cr), cr < 0.10 ? "yes" : "no"});
  }
  experts.print(std::cout);
  std::cout << "aggregated panel CR: "
            << report::format_value(out.ahp.consistency_ratio)
            << (out.ahp.acceptable() ? " (acceptable)" : " (NOT acceptable)")
            << "\n\nAHP criteria weights:\n";

  report::Table weights({"criterion", "weight"});
  for (std::size_t c = 0; c < core::kPropertyCount; ++c)
    weights.add_row(
        {std::string(core::property_name(core::all_properties()[c])),
         report::format_value(out.ahp.weights[c])});
  weights.add_row({"scenario fit (ranking fidelity)",
                   report::format_value(out.ahp.weights[core::kPropertyCount])});
  weights.print(std::cout);

  std::cout << "\nTop metrics by MCDA vs the analytical selection:\n";
  const auto mcda_order = stats::order_descending(out.mcda_scores);
  const auto analytical_order = stats::order_descending(out.analytical_scores);
  report::Table top({"rank", "MCDA (AHP + experts)", "analytical"});
  for (std::size_t i = 0; i < 5; ++i)
    top.add_row(
        {std::to_string(i + 1),
         std::string(core::metric_info(out.metrics[mcda_order[i]]).name),
         std::string(
             core::metric_info(out.metrics[analytical_order[i]]).name)});
  top.print(std::cout);
  std::cout << "\nagreement: Kendall tau = "
            << report::format_value(out.kendall_agreement)
            << ", top-3 overlap = "
            << report::format_percent(out.top3_overlap)
            << ", same top choice = " << (out.same_top ? "yes" : "no")
            << "\n";
  return 0;
}
