// Tool selection under different scenarios: benchmark the six built-in
// simulated tools on a synthetic web-service corpus and show how the
// *winning tool changes with the metric* — the failure mode the DSN'15
// metric-selection study exists to prevent.
//
//   $ ./tool_selection [seed]
#include <cstdlib>
#include <iostream>

#include "report/table.h"
#include "vdsim/campaign.h"

int main(int argc, char** argv) {
  using namespace vdbench;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // A corpus of 300 services, ~12% of candidate sites vulnerable.
  vdsim::WorkloadSpec spec;
  spec.num_services = 300;
  spec.prevalence = 0.12;
  stats::Rng wrng(seed);
  const vdsim::Workload workload = generate_workload(spec, wrng);
  std::cout << "Workload: " << workload.services().size() << " services, "
            << workload.total_sites() << " candidate sites, "
            << workload.total_vulns() << " seeded vulnerabilities ("
            << report::format_percent(workload.realized_prevalence())
            << " prevalence), " << report::format_value(workload.total_kloc(), 0)
            << " kLoC\n\n";

  // Evaluate under a miss-heavy cost model (security-critical context).
  stats::Rng rng(seed + 1);
  const auto results = run_benchmarks(vdsim::builtin_tools(), workload,
                                      vdsim::CostModel{20.0, 1.0}, rng);

  const std::vector<core::MetricId> shown = {
      core::MetricId::kRecall,       core::MetricId::kPrecision,
      core::MetricId::kFMeasure,     core::MetricId::kMcc,
      core::MetricId::kNormalizedExpectedCost,
      core::MetricId::kAnalysisThroughput};

  report::Table table({"tool", "TP", "FP", "FN", "recall", "precision", "F1",
                       "MCC", "NEC", "kLoC/s"});
  for (const vdsim::BenchmarkResult& r : results) {
    table.add_row(
        {r.tool_name, std::to_string(r.context.cm.tp),
         std::to_string(r.context.cm.fp), std::to_string(r.context.cm.fn),
         report::format_value(r.metric(core::MetricId::kRecall)),
         report::format_value(r.metric(core::MetricId::kPrecision)),
         report::format_value(r.metric(core::MetricId::kFMeasure)),
         report::format_value(r.metric(core::MetricId::kMcc)),
         report::format_value(
             r.metric(core::MetricId::kNormalizedExpectedCost)),
         report::format_value(
             r.metric(core::MetricId::kAnalysisThroughput), 2)});
  }
  table.print(std::cout);

  std::cout << "\nWinner by each metric:\n";
  report::Table winners({"metric", "best tool"});
  for (const core::MetricId id : shown) {
    const auto order = vdsim::rank_tools_by_metric(results, id);
    winners.add_row({std::string(core::metric_info(id).name),
                     results[order.front()].tool_name});
  }
  winners.print(std::cout);
  std::cout << "\nDifferent metrics crown different tools — pick the metric "
               "for your scenario first (see quickstart / bench_e7).\n";
  return 0;
}
