// Property test for the corpus matcher: random manifests and random SARIF
// reports are scored both by the production pipeline (match_findings →
// evaluate_direct / evaluate_streamed) and by a deliberately independent
// oracle that re-derives the ambiguity policy with linear scans. The two
// must agree cell-for-cell on every generated case.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/confusion.h"
#include "corpus/intake.h"
#include "corpus/manifest.h"
#include "corpus/matcher.h"
#include "corpus/sarif.h"
#include "stream/record.h"
#include "support/propgen.h"
#include "vdsim/vuln.h"

namespace vdbench::corpus {
namespace {

using testsupport::PropGen;

struct GeneratedCase {
  Manifest manifest;
  SarifReport report;
};

// Random manifest + report. Site identities are unique by construction
// (one uri per ecosystem, line = ordinal); findings cover matched sites
// (with duplicate claims), strays, unmapped rules and absent confidences.
GeneratedCase generate(PropGen& gen) {
  GeneratedCase out;
  out.manifest.name = "prop";
  // Rules r0..r7 map onto the taxonomy; "r-offmap" maps outside it and
  // "r-unlisted" stays out of the table entirely.
  for (const vdsim::VulnClass c : vdsim::all_vuln_classes())
    out.manifest.rules.emplace(
        "r" + std::to_string(vdsim::vuln_class_index(c)),
        std::string(vdsim::vuln_class_cwe(c)));
  out.manifest.rules.emplace("r-offmap", "CWE-0000");

  const std::size_t ecosystems = 1 + gen.below(2);
  for (std::size_t e = 0; e < ecosystems; ++e) {
    Ecosystem eco;
    eco.name = "eco" + std::to_string(e);
    const std::string uri = "src/eco" + std::to_string(e) + ".c";
    const std::size_t sites = 2 + gen.below(18);
    for (std::size_t s = 0; s < sites; ++s) {
      TruthSite site;
      site.uri = uri;
      site.line = static_cast<std::uint32_t>(s + 1);
      site.vulnerable = gen.below(99) < 40;
      if (site.vulnerable)
        site.vuln_class = vdsim::all_vuln_classes()[gen.below(7)];
      site.difficulty = 0.05 * static_cast<double>(gen.below(20));
      eco.sites.push_back(site);

      // 0–3 findings on this site.
      const std::size_t claims = gen.below(3);
      for (std::size_t f = 0; f < claims; ++f) {
        SarifFinding finding;
        finding.uri = uri;
        finding.line = site.line;
        finding.level = "warning";
        const std::size_t pick = gen.below(9);
        finding.rule_id = pick < 8 ? "r" + std::to_string(pick)
                          : gen.below(1) == 0 ? "r-offmap"
                                              : "r-unlisted";
        finding.confidence =
            gen.below(3) == 0 ? -1.0 : gen.uniform(0.0, 1.0);
        out.report.findings.push_back(finding);
      }
    }
    out.manifest.ecosystems.push_back(std::move(eco));
  }

  // Stray findings nothing enumerates.
  const std::size_t strays = gen.below(4);
  for (std::size_t i = 0; i < strays; ++i) {
    SarifFinding finding;
    finding.uri = "stray/file" + std::to_string(gen.below(2)) + ".c";
    finding.line = static_cast<std::uint32_t>(1 + gen.below(5));
    finding.rule_id = "r0";
    finding.confidence = gen.uniform(0.0, 1.0);
    out.report.findings.push_back(finding);
  }
  return out;
}

// Independent re-derivation of the policy: for each site, a full linear
// scan over the findings; confusion cells computed straight from the
// matcher.h clauses rather than via stream::accumulate.
struct Oracle {
  core::ConfusionMatrix cm;
  MatchStats stats;
};

Oracle score_by_hand(const GeneratedCase& c) {
  Oracle oracle;
  std::vector<bool> consumed(c.report.findings.size(), false);
  for (const Ecosystem& eco : c.manifest.ecosystems) {
    for (const TruthSite& site : eco.sites) {
      ++oracle.stats.sites;
      std::optional<std::size_t> winner;
      double best = -2.0;
      std::size_t on_site = 0;
      for (std::size_t f = 0; f < c.report.findings.size(); ++f) {
        const SarifFinding& finding = c.report.findings[f];
        if (finding.uri != site.uri || finding.line != site.line) continue;
        ++on_site;
        consumed[f] = true;
        if (finding.confidence > best) {
          best = finding.confidence;
          winner = f;
        }
      }
      if (on_site > 0) {
        ++oracle.stats.matched;
        oracle.stats.duplicates += on_site - 1;
      }
      std::optional<vdsim::VulnClass> claimed;
      bool unknown = false;
      if (winner) {
        const auto rule =
            c.manifest.rules.find(c.report.findings[*winner].rule_id);
        if (rule != c.manifest.rules.end())
          claimed = vuln_class_from_cwe(rule->second);
        unknown = !claimed.has_value();
        if (unknown) ++oracle.stats.unknown_rule;
      }
      if (!site.vulnerable) {
        if (winner)
          ++oracle.cm.fp;
        else
          ++oracle.cm.tn;
      } else if (!winner) {
        ++oracle.cm.fn;
      } else if (!unknown && *claimed == site.vuln_class) {
        ++oracle.cm.tp;
      } else {
        ++oracle.cm.fp;
        ++oracle.cm.fn;
      }
    }
  }
  for (std::size_t f = 0; f < c.report.findings.size(); ++f)
    if (!consumed[f]) ++oracle.stats.stray;
  return oracle;
}

TEST(CorpusPropertyTest, MatcherAgreesWithTheHandComputedOracle) {
  PropGen gen = PropGen::from_current_test();
  for (int iteration = 0; iteration < 60; ++iteration) {
    const GeneratedCase c = generate(gen);
    const Oracle oracle = score_by_hand(c);
    const MatchResult match = match_findings(c.manifest, c.report);

    EXPECT_EQ(match.stats.sites, oracle.stats.sites) << "iter " << iteration;
    EXPECT_EQ(match.stats.matched, oracle.stats.matched)
        << "iter " << iteration;
    EXPECT_EQ(match.stats.stray, oracle.stats.stray) << "iter " << iteration;
    EXPECT_EQ(match.stats.duplicates, oracle.stats.duplicates)
        << "iter " << iteration;
    EXPECT_EQ(match.stats.unknown_rule, oracle.stats.unknown_rule)
        << "iter " << iteration;

    const core::ConfusionMatrix direct = evaluate_direct(match.records);
    ASSERT_TRUE(direct == oracle.cm)
        << "iter " << iteration << ": pipeline " << direct.to_string()
        << " vs oracle " << oracle.cm.to_string();

    // Streamed transport with a random chunking changes nothing.
    const std::size_t chunk = 1 + gen.below(40);
    const core::ConfusionMatrix streamed =
        evaluate_streamed(match.records, chunk);
    ASSERT_TRUE(streamed == direct)
        << "iter " << iteration << " chunk " << chunk << ": "
        << streamed.to_string() << " vs " << direct.to_string();
  }
}

TEST(CorpusPropertyTest, RecordCountsAlwaysBalance) {
  // Invariant: every enumerated site yields exactly one record; the
  // confusion cells total sites plus one extra for each wrong-class claim
  // on a vulnerable site (which scores FP and FN at once).
  PropGen gen = PropGen::from_current_test();
  for (int iteration = 0; iteration < 40; ++iteration) {
    const GeneratedCase c = generate(gen);
    const MatchResult match = match_findings(c.manifest, c.report);
    EXPECT_EQ(match.records.size(), match.stats.sites) << "iter " << iteration;

    std::uint64_t dual = 0;
    for (const stream::SiteRecord& record : match.records)
      if (record.truth != stream::kCleanSite &&
          record.claimed != stream::kNoFinding &&
          record.claimed != record.truth)
        ++dual;
    const core::ConfusionMatrix cm = evaluate_direct(match.records);
    EXPECT_EQ(cm.tp + cm.fp + cm.tn + cm.fn, match.stats.sites + dual)
        << "iter " << iteration;
  }
}

}  // namespace
}  // namespace vdbench::corpus
