// Metamorphic tests for prevalence behaviour — the paper's central
// analytical claim. Instead of asserting absolute metric values, each test
// applies a semantics-preserving transformation to a generated benchmark
// (scaling the negative class, sweeping prevalence at fixed detector
// quality) and asserts the documented relation between the two outputs.
#include <gtest/gtest.h>

#include <cmath>

#include "core/metrics.h"
#include "support/propgen.h"

namespace vdbench::core {
namespace {

using testsupport::PropGen;

constexpr std::size_t kCases = 256;

EvalContext context_of(const ConfusionMatrix& cm) {
  EvalContext ctx;
  ctx.cm = cm;
  return ctx;
}

// Scale only the negative class (FP and TN) by k: the tool's behaviour on
// vulnerabilities is untouched, the workload just contains k times as many
// clean sites with the same per-site fallout.
ConfusionMatrix scale_negatives(const ConfusionMatrix& cm, std::uint64_t k) {
  ConfusionMatrix scaled = cm;
  scaled.fp *= k;
  scaled.tn *= k;
  return scaled;
}

TEST(PrevalenceMetamorphic, PositiveClassRatesIgnoreNegativeScaling) {
  // Recall and FNR are functions of (TP, FN) only, so diluting the
  // workload with clean sites must leave them bit-for-bit unchanged.
  PropGen gen = PropGen::from_current_test();
  for (std::size_t i = 0; i < kCases; ++i) {
    const ConfusionMatrix cm = gen.confusion();
    const std::uint64_t k = 2 + gen.below(30);
    const EvalContext base = context_of(cm);
    const EvalContext diluted = context_of(scale_negatives(cm, k));
    for (const MetricId id : {MetricId::kRecall, MetricId::kFnRate}) {
      const double v = compute_metric(id, base);
      const double v_diluted = compute_metric(id, diluted);
      EXPECT_EQ(std::isfinite(v), std::isfinite(v_diluted))
          << metric_info(id).key << " on " << cm.to_string() << " k=" << k;
      if (std::isfinite(v)) {
        EXPECT_DOUBLE_EQ(v, v_diluted)
            << metric_info(id).key << " on " << cm.to_string() << " k=" << k;
      }
    }
  }
}

TEST(PrevalenceMetamorphic, PrecisionNeverImprovesUnderNegativeDilution) {
  // Scaling the negative class by k >= 1 multiplies FP while TP stays
  // fixed, so precision can only fall (strictly, whenever FP > 0). This is
  // the paper's "precision collapses at low prevalence" effect stated as a
  // metamorphic relation.
  PropGen gen = PropGen::from_current_test();
  for (std::size_t i = 0; i < kCases; ++i) {
    const ConfusionMatrix cm = gen.confusion();
    const std::uint64_t k = 2 + gen.below(30);
    const double p = compute_metric(MetricId::kPrecision, context_of(cm));
    const double p_diluted = compute_metric(
        MetricId::kPrecision, context_of(scale_negatives(cm, k)));
    if (!std::isfinite(p) || !std::isfinite(p_diluted)) continue;
    EXPECT_LE(p_diluted, p + 1e-12) << cm.to_string() << " k=" << k;
    if (cm.fp > 0 && cm.tp > 0) {
      EXPECT_LT(p_diluted, p) << cm.to_string() << " k=" << k;
    }
  }
}

TEST(PrevalenceMetamorphic, CataloguedInvarianceMatchesAsymptoticSweep) {
  // The catalogue flags each metric as prevalence-invariant or not; check
  // the flag against the metric's actual behaviour on asymptotic expected
  // matrices for a fixed detector at two different prevalences. Flagged
  // metrics must agree across the sweep; this guards the catalogue
  // metadata the paper's comparability argument rests on.
  PropGen gen = PropGen::from_current_test();
  constexpr std::uint64_t kItems = 4'000'000;
  for (std::size_t i = 0; i < kCases; ++i) {
    const double sensitivity = gen.uniform(0.05, 0.95);
    const double fallout = gen.uniform(0.01, 0.5);
    const double prev_a = gen.uniform(0.05, 0.25);
    const double prev_b = gen.uniform(0.30, 0.6);
    const EvalContext a =
        context_of(expected_confusion(sensitivity, fallout, prev_a, kItems));
    const EvalContext b =
        context_of(expected_confusion(sensitivity, fallout, prev_b, kItems));
    for (const MetricId id : all_metrics()) {
      if (!metric_info(id).prevalence_invariant) continue;
      if (id == MetricId::kPrevalence) continue;  // trivially varies
      const double va = compute_metric(id, a);
      const double vb = compute_metric(id, b);
      if (!std::isfinite(va) || !std::isfinite(vb)) continue;
      // Rounded cell counts leave O(1/items) noise; 1e-4 relative is far
      // above it and far below any real prevalence dependence.
      const double tol = 1e-4 * std::max(1.0, std::fabs(va));
      EXPECT_NEAR(va, vb, tol)
          << metric_info(id).key << " sens=" << sensitivity
          << " fallout=" << fallout << " prev " << prev_a << " vs " << prev_b;
    }
  }
}

TEST(PrevalenceMetamorphic, NonInvariantHeadlineMetricsDoMoveWithPrevalence) {
  // Converse guard: precision and NPV are catalogued as prevalence-
  // dependent; on a mid-quality detector they must actually move, or the
  // invariance sweep above would be vacuous.
  const double sensitivity = 0.7;
  const double fallout = 0.1;
  constexpr std::uint64_t kItems = 4'000'000;
  const EvalContext low =
      context_of(expected_confusion(sensitivity, fallout, 0.02, kItems));
  const EvalContext high =
      context_of(expected_confusion(sensitivity, fallout, 0.5, kItems));
  for (const MetricId id : {MetricId::kPrecision, MetricId::kNpv}) {
    ASSERT_FALSE(metric_info(id).prevalence_invariant)
        << metric_info(id).key;
    const double v_low = compute_metric(id, low);
    const double v_high = compute_metric(id, high);
    EXPECT_GT(std::fabs(v_low - v_high), 0.05) << metric_info(id).key;
  }
}

}  // namespace
}  // namespace vdbench::core
