// Property-based sweeps over the metric catalogue: each property is
// checked on >= 200 generated confusion matrices (including degenerate
// ones) rather than on hand-picked examples. The generator is seeded from
// the test name (see tests/support/propgen.h), so every failure
// reproduces deterministically and the counterexample matrix is printed
// by the assertion message.
#include <gtest/gtest.h>

#include <cmath>

#include "core/metrics.h"
#include "support/propgen.h"

namespace vdbench::core {
namespace {

using testsupport::PropGen;

constexpr std::size_t kCases = 256;

EvalContext context_of(const ConfusionMatrix& cm) {
  EvalContext ctx;
  ctx.cm = cm;
  return ctx;
}

TEST(MetricPropertyGen, BoundedMetricsStayInDeclaredRange) {
  // Every metric with a finite declared range respects it on every input
  // where it is defined — in particular precision/recall/F1 in [0,1] and
  // MCC / Youden's J in [-1,1].
  PropGen gen = PropGen::from_current_test();
  for (std::size_t i = 0; i < kCases; ++i) {
    const ConfusionMatrix cm = gen.confusion();
    const EvalContext ctx = context_of(cm);
    for (const MetricId id : all_metrics()) {
      if (!metric_bounded(id)) continue;
      const double v = compute_metric(id, ctx);
      if (!std::isfinite(v)) continue;  // undefined is legal, out-of-range is not
      const MetricInfo& info = metric_info(id);
      EXPECT_GE(v, info.range_lo - 1e-12)
          << info.key << " on " << cm.to_string();
      EXPECT_LE(v, info.range_hi + 1e-12)
          << info.key << " on " << cm.to_string();
    }
  }
}

TEST(MetricPropertyGen, F1IsHarmonicMeanOfPrecisionAndRecall) {
  PropGen gen = PropGen::from_current_test();
  for (std::size_t i = 0; i < kCases; ++i) {
    const ConfusionMatrix cm = gen.confusion();
    const EvalContext ctx = context_of(cm);
    const double p = compute_metric(MetricId::kPrecision, ctx);
    const double r = compute_metric(MetricId::kRecall, ctx);
    const double f1 = compute_metric(MetricId::kFMeasure, ctx);
    if (!std::isfinite(p) || !std::isfinite(r) || !std::isfinite(f1) ||
        p + r == 0.0)
      continue;
    EXPECT_NEAR(f1, 2.0 * p * r / (p + r), 1e-9) << cm.to_string();
  }
}

TEST(MetricPropertyGen, MccNegatesWhenPredictionsAreInverted) {
  // Inverting every prediction (report <-> silence) swaps TP<->FN and
  // TN<->FP; a correlation coefficient must exactly change sign.
  PropGen gen = PropGen::from_current_test();
  for (std::size_t i = 0; i < kCases; ++i) {
    const ConfusionMatrix cm = gen.confusion();
    ConfusionMatrix inverted;
    inverted.tp = cm.fn;
    inverted.fn = cm.tp;
    inverted.tn = cm.fp;
    inverted.fp = cm.tn;
    const double mcc = compute_metric(MetricId::kMcc, context_of(cm));
    const double mcc_inv =
        compute_metric(MetricId::kMcc, context_of(inverted));
    if (!std::isfinite(mcc) || !std::isfinite(mcc_inv)) {
      // Definedness is symmetric: the inverted denominator is the same
      // product of marginals.
      EXPECT_EQ(std::isfinite(mcc), std::isfinite(mcc_inv))
          << cm.to_string();
      continue;
    }
    EXPECT_NEAR(mcc, -mcc_inv, 1e-9) << cm.to_string();
  }
}

TEST(MetricPropertyGen, CoreMetricsAreMonotoneWhenAMissBecomesADetection) {
  // Converting one FN into a TP (same workload, strictly better tool) must
  // not decrease any of the headline quality metrics.
  PropGen gen = PropGen::from_current_test();
  const MetricId monotone[] = {MetricId::kPrecision, MetricId::kRecall,
                               MetricId::kFMeasure,  MetricId::kAccuracy,
                               MetricId::kJaccard,   MetricId::kMcc,
                               MetricId::kInformedness};
  for (std::size_t i = 0; i < kCases; ++i) {
    ConfusionMatrix cm = gen.confusion();
    if (cm.fn == 0) cm.fn = 1 + gen.below(100);
    ConfusionMatrix better = cm;
    ++better.tp;
    --better.fn;
    for (const MetricId id : monotone) {
      const double v = compute_metric(id, context_of(cm));
      const double v_better = compute_metric(id, context_of(better));
      if (!std::isfinite(v) || !std::isfinite(v_better)) continue;
      EXPECT_GE(v_better, v - 1e-12)
          << metric_info(id).key << " on " << cm.to_string();
    }
  }
}

TEST(MetricPropertyGen, YoudenJIsRecallPlusSpecificityMinusOne) {
  PropGen gen = PropGen::from_current_test();
  for (std::size_t i = 0; i < kCases; ++i) {
    const ConfusionMatrix cm = gen.confusion();
    const EvalContext ctx = context_of(cm);
    const double j = compute_metric(MetricId::kInformedness, ctx);
    const double recall = compute_metric(MetricId::kRecall, ctx);
    const double spec = compute_metric(MetricId::kSpecificity, ctx);
    if (!std::isfinite(j) || !std::isfinite(recall) || !std::isfinite(spec))
      continue;
    EXPECT_NEAR(j, recall + spec - 1.0, 1e-9) << cm.to_string();
  }
}

}  // namespace
}  // namespace vdbench::core
