// Property sweep over the degenerate-input policy of core/metrics.h: on
// generated matrices biased toward zero-denominator corners, every metric
// value is NaN, +inf or inside its declared range; the indeterminate-form
// vs unbounded-ratio distinction holds; and the batch kernels reproduce
// the scalar bits exactly. Runs under the smoke AND tsan labels so the
// batch path also gets thread-sanitizer coverage.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <vector>

#include "core/batch.h"
#include "core/metrics.h"
#include "stats/arena.h"
#include "support/propgen.h"

namespace vdbench::core {
namespace {

using testsupport::PropGen;

constexpr std::size_t kCases = 256;

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

EvalContext context_of(const ConfusionMatrix& cm) {
  EvalContext ctx;
  ctx.cm = cm;
  return ctx;
}

// Aggressively degenerate generator: half the time zero out 1-3 cells on
// top of PropGen's usual quarter-rate single-cell zeroing.
ConfusionMatrix degenerate_confusion(PropGen& gen) {
  ConfusionMatrix cm = gen.confusion(40);
  if (gen.below(1) == 0) {
    const std::uint64_t zeros = 1 + gen.below(2);
    for (std::uint64_t z = 0; z < zeros; ++z) {
      switch (gen.below(3)) {
        case 0: cm.tp = 0; break;
        case 1: cm.fp = 0; break;
        case 2: cm.tn = 0; break;
        default: cm.fn = 0; break;
      }
    }
  }
  return cm;
}

TEST(DegeneratePolicy, ValuesAreNanInfOrInDeclaredRange) {
  PropGen gen = PropGen::from_current_test();
  for (std::size_t i = 0; i < kCases; ++i) {
    const ConfusionMatrix cm = degenerate_confusion(gen);
    const EvalContext ctx = context_of(cm);
    for (const MetricId id : all_metrics()) {
      const double v = compute_metric(id, ctx);
      if (std::isnan(v)) continue;          // "no answer" is always legal
      const MetricInfo& info = metric_info(id);
      EXPECT_GE(v, info.range_lo - 1e-12) << info.key << " on "
                                          << cm.to_string();
      EXPECT_LE(v, info.range_hi + 1e-12) << info.key << " on "
                                          << cm.to_string();
      if (std::isinf(v)) {
        // Only the unbounded ratios may diverge, and only to +inf.
        EXPECT_GT(v, 0.0) << info.key << " on " << cm.to_string();
        EXPECT_TRUE(id == MetricId::kLrPlus || id == MetricId::kLrMinus ||
                    id == MetricId::kDiagnosticOddsRatio)
            << info.key << " unexpectedly infinite on " << cm.to_string();
      }
    }
  }
}

TEST(DegeneratePolicy, ZeroDenominatorRatesAreNanNotZero) {
  PropGen gen = PropGen::from_current_test();
  for (std::size_t i = 0; i < kCases; ++i) {
    ConfusionMatrix cm = degenerate_confusion(gen);
    // Rates over an empty class give no answer, never a fake 0 or 1.
    cm.tp = 0;
    cm.fn = 0;  // no actual positives
    const EvalContext ctx = context_of(cm);
    EXPECT_TRUE(std::isnan(compute_metric(MetricId::kRecall, ctx)))
        << cm.to_string();
    EXPECT_TRUE(std::isnan(compute_metric(MetricId::kFnRate, ctx)))
        << cm.to_string();
    cm = degenerate_confusion(gen);
    cm.fp = 0;
    cm.tn = 0;  // no actual negatives
    const EvalContext ctx2 = context_of(cm);
    EXPECT_TRUE(std::isnan(compute_metric(MetricId::kSpecificity, ctx2)))
        << cm.to_string();
    EXPECT_TRUE(std::isnan(compute_metric(MetricId::kFpRate, ctx2)))
        << cm.to_string();
  }
}

TEST(DegeneratePolicy, FFamilyIsZeroWhenPrecisionAndRecallAreBothZero) {
  PropGen gen = PropGen::from_current_test();
  for (std::size_t i = 0; i < kCases; ++i) {
    ConfusionMatrix cm = degenerate_confusion(gen);
    cm.tp = 0;
    cm.fp = 1 + cm.fp;  // at least one report, all wrong
    cm.fn = 1 + cm.fn;  // at least one missed vulnerability
    const EvalContext ctx = context_of(cm);
    for (const MetricId id :
         {MetricId::kFMeasure, MetricId::kFHalf, MetricId::kF2}) {
      EXPECT_EQ(compute_metric(id, ctx), 0.0)
          << metric_info(id).key << " on " << cm.to_string();
    }
  }
}

TEST(DegeneratePolicy, BatchKernelsReproduceScalarBitsOnDegenerateGrid) {
  PropGen gen = PropGen::from_current_test();
  std::vector<EvalContext> contexts;
  contexts.reserve(kCases);
  for (std::size_t i = 0; i < kCases; ++i)
    contexts.push_back(context_of(degenerate_confusion(gen)));

  stats::Arena arena;
  const ConfusionBatch batch = make_batch(contexts, arena);
  const std::span<double> plane =
      arena.allocate_span<double>(contexts.size() * kMetricCount);
  BatchEvaluator(arena).evaluate_all(batch, plane);
  for (std::size_t i = 0; i < contexts.size(); ++i) {
    const std::vector<double> scalar = compute_all_metrics(contexts[i]);
    for (std::size_t m = 0; m < kMetricCount; ++m) {
      EXPECT_EQ(bits(plane[i * kMetricCount + m]), bits(scalar[m]))
          << contexts[i].cm.to_string() << " metric "
          << metric_info(all_metrics()[m]).key;
    }
  }
}

}  // namespace
}  // namespace vdbench::core
