#include "stats/rank.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "stats/rng.h"

namespace vdbench::stats {
namespace {

TEST(RankTest, AverageRanksSimple) {
  const std::vector<double> xs = {10.0, 30.0, 20.0};
  const std::vector<double> expected = {1.0, 3.0, 2.0};
  EXPECT_EQ(average_ranks(xs), expected);
}

TEST(RankTest, AverageRanksWithTies) {
  const std::vector<double> xs = {10.0, 20.0, 20.0};
  const std::vector<double> expected = {1.0, 2.5, 2.5};
  EXPECT_EQ(average_ranks(xs), expected);
}

TEST(RankTest, AverageRanksAllTied) {
  const std::vector<double> xs = {5.0, 5.0, 5.0, 5.0};
  const std::vector<double> expected = {2.5, 2.5, 2.5, 2.5};
  EXPECT_EQ(average_ranks(xs), expected);
}

TEST(RankTest, OrderDescendingStableOnTies) {
  const std::vector<double> xs = {1.0, 3.0, 3.0, 2.0};
  const std::vector<std::size_t> expected = {1, 2, 3, 0};
  EXPECT_EQ(order_descending(xs), expected);
}

TEST(RankTest, PearsonPerfectCorrelation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys = {10.0, 20.0, 30.0, 40.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(RankTest, PearsonPerfectAnticorrelation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> ys = {3.0, 2.0, 1.0};
  EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(RankTest, PearsonRejectsZeroVariance) {
  const std::vector<double> xs = {1.0, 1.0, 1.0};
  const std::vector<double> ys = {1.0, 2.0, 3.0};
  EXPECT_THROW(pearson(xs, ys), std::invalid_argument);
}

TEST(RankTest, SpearmanInvariantToMonotoneTransform) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> ys = {1.0, 8.0, 27.0, 64.0, 125.0};  // x^3
  EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
}

TEST(RankTest, KendallIdenticalOrderIsOne) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys = {2.0, 4.0, 6.0, 8.0};
  EXPECT_DOUBLE_EQ(kendall_tau(xs, ys), 1.0);
}

TEST(RankTest, KendallReversedOrderIsMinusOne) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys = {4.0, 3.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(kendall_tau(xs, ys), -1.0);
}

TEST(RankTest, KendallKnownValue) {
  // One discordant pair out of 6: tau = (5-1)/6.
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys = {1.0, 2.0, 4.0, 3.0};
  EXPECT_NEAR(kendall_tau(xs, ys), 4.0 / 6.0, 1e-12);
}

TEST(RankTest, KendallSymmetric) {
  const std::vector<double> xs = {3.0, 1.0, 4.0, 1.5, 5.0};
  const std::vector<double> ys = {2.0, 7.0, 1.0, 8.0, 2.5};
  EXPECT_DOUBLE_EQ(kendall_tau(xs, ys), kendall_tau(ys, xs));
}

TEST(RankTest, KendallTieAware) {
  const std::vector<double> xs = {1.0, 2.0, 2.0, 3.0};
  const std::vector<double> ys = {1.0, 2.0, 3.0, 4.0};
  const double tau = kendall_tau(xs, ys);
  EXPECT_GT(tau, 0.8);
  EXPECT_LT(tau, 1.0);  // ties reduce tau-b below 1
}

TEST(RankTest, KendallThrowsWhenEntirelyTied) {
  const std::vector<double> xs = {1.0, 1.0, 1.0};
  const std::vector<double> ys = {1.0, 2.0, 3.0};
  EXPECT_THROW(kendall_tau(xs, ys), std::invalid_argument);
}

TEST(RankTest, KendallBoundedOnRandomData) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> xs(10), ys(10);
    for (int i = 0; i < 10; ++i) {
      xs[i] = rng.uniform();
      ys[i] = rng.uniform();
    }
    const double tau = kendall_tau(xs, ys);
    EXPECT_GE(tau, -1.0);
    EXPECT_LE(tau, 1.0);
  }
}

TEST(RankTest, TopKOverlapFullAndEmpty) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> zs = {4.0, 3.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(top_k_overlap(xs, ys, 2), 1.0);
  EXPECT_DOUBLE_EQ(top_k_overlap(xs, zs, 2), 0.0);
}

TEST(RankTest, TopKOverlapPartial) {
  const std::vector<double> xs = {4.0, 3.0, 2.0, 1.0};
  const std::vector<double> ys = {4.0, 1.0, 3.0, 2.0};
  // top-2 of xs: {0,1}; top-2 of ys: {0,2} -> overlap 1/2.
  EXPECT_DOUBLE_EQ(top_k_overlap(xs, ys, 2), 0.5);
}

TEST(RankTest, TopKOverlapRejectsBadK) {
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_THROW(top_k_overlap(xs, xs, 0), std::invalid_argument);
  EXPECT_THROW(top_k_overlap(xs, xs, 3), std::invalid_argument);
}

TEST(RankTest, RejectsNonFiniteInput) {
  // Regression: NaN input used to reach the raw </> sort comparators,
  // violating strict weak ordering and leaving stable_sort unspecified
  // (reachable in practice — undefined metrics produce NaN utilities).
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> with_nan = {1.0, nan, 3.0};
  const std::vector<double> with_inf = {1.0, inf, 3.0};
  const std::vector<double> with_neg_inf = {1.0, -inf, 3.0};
  const std::vector<double> clean = {1.0, 2.0, 3.0};

  EXPECT_THROW(average_ranks(with_nan), std::invalid_argument);
  EXPECT_THROW(average_ranks(with_inf), std::invalid_argument);
  EXPECT_THROW(average_ranks(with_neg_inf), std::invalid_argument);
  EXPECT_THROW(order_descending(with_nan), std::invalid_argument);

  EXPECT_THROW(pearson(with_nan, clean), std::invalid_argument);
  EXPECT_THROW(pearson(clean, with_inf), std::invalid_argument);
  EXPECT_THROW(spearman(with_nan, clean), std::invalid_argument);
  EXPECT_THROW(spearman(clean, with_nan), std::invalid_argument);
  EXPECT_THROW(kendall_tau(with_nan, clean), std::invalid_argument);
  EXPECT_THROW(kendall_tau(clean, with_neg_inf), std::invalid_argument);
  EXPECT_THROW(top_k_overlap(with_nan, clean, 2), std::invalid_argument);
  EXPECT_THROW(top_k_overlap(clean, with_inf, 2), std::invalid_argument);
  EXPECT_THROW(same_top_choice(with_nan, clean), std::invalid_argument);
}

TEST(RankTest, AllNanInputStillThrows) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> nans = {nan, nan, nan};
  EXPECT_THROW(average_ranks(nans), std::invalid_argument);
  EXPECT_THROW(kendall_tau(nans, nans), std::invalid_argument);
}

TEST(RankTest, SameTopChoice) {
  const std::vector<double> xs = {1.0, 5.0, 3.0};
  const std::vector<double> ys = {0.1, 0.9, 0.5};
  const std::vector<double> zs = {9.0, 1.0, 2.0};
  EXPECT_TRUE(same_top_choice(xs, ys));
  EXPECT_FALSE(same_top_choice(xs, zs));
}

}  // namespace
}  // namespace vdbench::stats
