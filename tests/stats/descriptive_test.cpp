#include "stats/descriptive.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace vdbench::stats {
namespace {

const std::vector<double> kSample = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};

TEST(DescriptiveTest, MeanKnownValue) {
  EXPECT_DOUBLE_EQ(mean(kSample), 5.0);
}

TEST(DescriptiveTest, MeanSingleElement) {
  const std::vector<double> one = {3.25};
  EXPECT_DOUBLE_EQ(mean(one), 3.25);
}

TEST(DescriptiveTest, MeanThrowsOnEmpty) {
  const std::vector<double> empty;
  EXPECT_THROW(mean(empty), std::invalid_argument);
}

TEST(DescriptiveTest, PopulationVarianceKnownValue) {
  // Classic example: population variance of kSample is 4.
  EXPECT_DOUBLE_EQ(population_variance(kSample), 4.0);
}

TEST(DescriptiveTest, SampleVarianceKnownValue) {
  EXPECT_NEAR(variance(kSample), 4.0 * 8.0 / 7.0, 1e-12);
}

TEST(DescriptiveTest, VarianceNeedsTwoSamples) {
  const std::vector<double> one = {1.0};
  EXPECT_THROW(variance(one), std::invalid_argument);
}

TEST(DescriptiveTest, StddevIsSqrtVariance) {
  EXPECT_DOUBLE_EQ(stddev(kSample) * stddev(kSample), variance(kSample));
}

TEST(DescriptiveTest, MinMax) {
  EXPECT_DOUBLE_EQ(min(kSample), 2.0);
  EXPECT_DOUBLE_EQ(max(kSample), 9.0);
}

TEST(DescriptiveTest, MedianEvenCount) {
  EXPECT_DOUBLE_EQ(median(kSample), 4.5);
}

TEST(DescriptiveTest, MedianOddCount) {
  const std::vector<double> odd = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
}

TEST(DescriptiveTest, QuantileEndpoints) {
  EXPECT_DOUBLE_EQ(quantile(kSample, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(quantile(kSample, 1.0), 9.0);
}

TEST(DescriptiveTest, QuantileInterpolates) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.75), 7.5);
}

TEST(DescriptiveTest, QuantileRejectsOutOfRange) {
  EXPECT_THROW(quantile(kSample, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile(kSample, 1.1), std::invalid_argument);
}

TEST(DescriptiveTest, QuantileUnsortedInputHandled) {
  const std::vector<double> v = {9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 5.0);
}

TEST(DescriptiveTest, CoefficientOfVariation) {
  EXPECT_DOUBLE_EQ(coefficient_of_variation(kSample),
                   stddev(kSample) / 5.0);
}

TEST(DescriptiveTest, CoefficientOfVariationZeroMeanThrows) {
  const std::vector<double> v = {-1.0, 1.0};
  EXPECT_THROW(coefficient_of_variation(v), std::invalid_argument);
}

TEST(DescriptiveTest, StandardError) {
  EXPECT_NEAR(standard_error(kSample),
              stddev(kSample) / std::sqrt(8.0), 1e-12);
}

TEST(DescriptiveTest, SummaryFields) {
  const Summary s = summarize(kSample);
  EXPECT_EQ(s.n, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
  EXPECT_LE(s.q25, s.median);
  EXPECT_LE(s.median, s.q75);
}

TEST(DescriptiveTest, SummarySingleElementHasZeroStddev) {
  const std::vector<double> one = {7.0};
  const Summary s = summarize(one);
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

}  // namespace
}  // namespace vdbench::stats
