#include "stats/histogram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace vdbench::stats {
namespace {

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(HistogramTest, BinsValuesCorrectly) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.1);   // bin 0
  h.add(0.3);   // bin 1
  h.add(0.55);  // bin 2
  h.add(0.99);  // bin 3
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_THROW(h.count(4), std::out_of_range);
}

TEST(HistogramTest, EdgesAndOutOfRange) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.0);    // inclusive lower edge -> bin 0
  h.add(1.0);    // exclusive upper edge -> overflow
  h.add(-0.01);  // underflow
  h.add(std::nan(""));  // NaN counts as underflow, never dropped
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.underflow(), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, BinEdgesCoverRangeExactly) {
  Histogram h(-1.0, 3.0, 8);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), -1.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(7), 3.0);
  for (std::size_t b = 0; b + 1 < h.bins(); ++b)
    EXPECT_DOUBLE_EQ(h.bin_hi(b), h.bin_lo(b + 1));
}

TEST(HistogramTest, DensitySumsToOneOverInRange) {
  Histogram h(0.0, 1.0, 5);
  const std::vector<double> xs = {0.05, 0.15, 0.25, 0.35, 0.95, 2.0};
  h.add_all(xs);
  double density = 0.0;
  for (std::size_t b = 0; b < h.bins(); ++b) density += h.density(b);
  EXPECT_NEAR(density, 1.0, 1e-12);
}

TEST(HistogramTest, ModeBin) {
  Histogram h(0.0, 1.0, 4);
  h.add_all(std::vector<double>{0.3, 0.3, 0.35, 0.8});
  EXPECT_EQ(h.mode_bin(), 1u);
}

TEST(HistogramTest, RenderShowsBarsAndOverflow) {
  Histogram h(0.0, 1.0, 2);
  h.add_all(std::vector<double>{0.1, 0.1, 0.7, 1.5});
  const std::string out = h.render(10);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find("overflow 1"), std::string::npos);
}

TEST(HistogramTest, EmptyRenderIsWellFormed) {
  const Histogram h(0.0, 1.0, 3);
  EXPECT_NO_THROW((void)h.render());
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.density(0), 0.0);
}

}  // namespace
}  // namespace vdbench::stats
