// Work-stealing scheduler tests (run under the tsan ctest label): the
// deque-per-participant scheduler must preserve every contract of the
// shared-counter scheduler it replaced — determinism at any thread count,
// cooperative cancellation between claims, deterministic fault keys,
// every-task-runs + lowest-index-error on failure — while actually
// redistributing an imbalanced sweep.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "fault/injector.h"
#include "stats/parallel.h"
#include "stats/rng.h"

namespace vdbench::stats {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 7, 16};

TEST(WorkStealingTest, ImbalancedSweepIsThreadCountInvariant) {
  // Task cost varies by two orders of magnitude across the range, so with
  // more than one thread the cheap shards drain early and finish the sweep
  // by stealing from the expensive one. The output must not care.
  const auto run_with = [](std::size_t threads) {
    ParallelExecutor exec(threads);
    Rng rng(987654);
    std::vector<Rng> children;
    children.reserve(96);
    for (std::size_t i = 0; i < 96; ++i) children.push_back(rng.split(i));
    std::vector<double> out(96);
    exec.parallel_for_indexed(96, [&](std::size_t i) {
      const int draws = i < 8 ? 4000 : 40;  // front shard is the heavy one
      double acc = 0.0;
      for (int d = 0; d < draws; ++d) acc += children[i].uniform();
      out[i] = acc;
    });
    return out;
  };
  const std::vector<double> serial = run_with(1);
  for (const std::size_t threads : kThreadCounts)
    EXPECT_EQ(serial, run_with(threads)) << "threads=" << threads;
}

TEST(WorkStealingTest, IdleWorkersStealFromABlockedOwnersShard) {
  // Task 0 (front of participant 0's chunk) blocks until the REST of that
  // chunk has run. The owner is stuck inside task 0, so the only way the
  // wait can succeed is other participants stealing tasks 1..3 from the
  // back of the blocked shard.
  ParallelExecutor exec(4);
  constexpr std::size_t kTasks = 16;  // 4 per participant
  std::vector<std::atomic<int>> hits(kTasks);
  std::atomic<int> shard0_rest{0};
  std::atomic<bool> stolen_while_blocked{false};
  exec.parallel_for_indexed(kTasks, [&](std::size_t i) {
    if (i == 0) {
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      while (shard0_rest.load() < 3 &&
             std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      stolen_while_blocked.store(shard0_rest.load() >= 3);
    } else if (i < 4) {
      ++shard0_rest;
    }
    ++hits[i];
  });
  EXPECT_TRUE(stolen_while_blocked.load())
      << "tasks 1..3 were not stolen while their owner was blocked";
  for (const std::atomic<int>& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkStealingTest, EveryTaskRunsAndLowestIndexErrorWinsUnderStealing) {
  for (const std::size_t threads : kThreadCounts) {
    ParallelExecutor exec(threads);
    std::vector<std::atomic<int>> hits(96);
    try {
      exec.parallel_for_indexed(96, [&](std::size_t i) {
        hits[i]++;
        if (i < 8)  // slow down the front shard so the tail gets stolen
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        if (i == 90) throw std::runtime_error("late");
        if (i == 11) throw std::invalid_argument("early");
      });
      FAIL() << "expected an exception (threads=" << threads << ")";
    } catch (const std::invalid_argument& e) {
      EXPECT_STREQ(e.what(), "early");
    }
    for (std::size_t i = 0; i < hits.size(); ++i)
      EXPECT_EQ(hits[i].load(), 1) << "task " << i << " threads=" << threads;
  }
}

TEST(WorkStealingTest, CancellationStopsStealingBetweenClaims) {
  // Fire the token from inside a task while thieves are mid-sweep through
  // a slow shard: workers must stop claiming (owned or stolen alike) and
  // the fork-join call must surface Cancelled, not a partial success.
  ParallelExecutor exec(4);
  CancellationToken token;
  ScopedCancellationToken install(&token);
  std::atomic<int> ran{0};
  EXPECT_THROW(exec.parallel_for_indexed(10000,
                                         [&](std::size_t i) {
                                           if (i == 0) token.request_cancel();
                                           std::this_thread::sleep_for(
                                               std::chrono::microseconds(20));
                                           ++ran;
                                         }),
               Cancelled);
  EXPECT_LT(ran.load(), 10000);
}

TEST(WorkStealingTest, CancelledRunLeavesExecutorReusable) {
  ParallelExecutor exec(7);
  CancellationToken token;
  {
    ScopedCancellationToken install(&token);
    token.request_cancel();
    EXPECT_THROW(exec.parallel_for_indexed(64, [](std::size_t) {}), Cancelled);
  }
  std::atomic<int> ran{0};
  exec.parallel_for_indexed(64, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 64);
}

class WorkStealingFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::Injector::global().disarm(); }
};

TEST_F(WorkStealingFaultTest, FaultKeyHitsTheSameTaskAtEveryThreadCount) {
  // The fault site key is the decimal task index — a property of the task,
  // not of whichever shard or thief ran it. The blast radius must be the
  // single keyed task regardless of how the range was partitioned.
  for (const std::size_t threads : kThreadCounts) {
    fault::Injector::global().arm("executor.task=throw@42:1");
    ParallelExecutor exec(threads);
    std::vector<std::atomic<int>> ran(96);
    try {
      exec.parallel_for_indexed(96, [&](std::size_t i) {
        if (i < 8)  // imbalance so task 42 is frequently a stolen task
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        ran[i]++;
      });
      FAIL() << "expected InjectedFault (threads=" << threads << ")";
    } catch (const fault::InjectedFault& e) {
      EXPECT_NE(std::string(e.what()).find("index 42"), std::string::npos)
          << e.what();
    }
    EXPECT_EQ(ran[42].load(), 0) << "threads=" << threads;
    for (std::size_t i = 0; i < ran.size(); ++i)
      if (i != 42)
        EXPECT_EQ(ran[i].load(), 1) << "task " << i << " threads=" << threads;
    fault::Injector::global().disarm();
  }
}

}  // namespace
}  // namespace vdbench::stats
