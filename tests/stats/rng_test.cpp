#include "stats/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <numeric>
#include <set>

namespace vdbench::stats {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform() == b.uniform()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(RngTest, SplitSequenceIsDeterministic) {
  // The contract: identical parent seed + identical sequence of split calls
  // -> identical children, so reconstructing a parent replays its children.
  Rng a(7), b(7);
  Rng a1 = a.split(3), a2 = a.split(3);
  Rng b1 = b.split(3), b2 = b.split(3);
  for (int i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(a1.uniform(), b1.uniform());
  for (int i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(a2.uniform(), b2.uniform());
}

TEST(RngTest, RepeatedSplitWithSameTagYieldsFreshStream) {
  // Regression: split used to be pure in the seed, so two same-tag splits
  // silently reused one stream and call sites had to invent disjoint tag
  // offsets. The per-parent split counter makes every call a new stream.
  Rng parent(7);
  Rng c1 = parent.split(3);
  Rng c2 = parent.split(3);
  EXPECT_EQ(parent.split_count(), 2u);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (c1.uniform() == c2.uniform()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(RngTest, SplitChildrenIndependent) {
  Rng parent(7);
  Rng c1 = parent.split(1);
  Rng c2 = parent.split(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (c1.uniform() == c2.uniform()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(RngTest, SplitCounterDistinguishesParentsWithEqualSeedHistory) {
  // Two parents with the same seed but different split histories produce
  // different next children even for the same tag.
  Rng a(11), b(11);
  (void)a.split(0);  // advance a's split counter only
  Rng ca = a.split(9);
  Rng cb = b.split(9);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (ca.uniform() == cb.uniform()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(RngTest, SplitDoesNotAdvanceParent) {
  Rng a(9), b(9);
  (void)a.split(5);
  EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespected) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 5.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformRejectsBadRange) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.uniform(2.0, 1.0), std::invalid_argument);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 3));
  EXPECT_EQ(seen, (std::set<std::int64_t>{0, 1, 2, 3}));
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliClampsOutOfRange) {
  Rng rng(5);
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, NormalMomentsRoughlyCorrect) {
  Rng rng(23);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, NormalZeroSdIsDegenerate) {
  Rng rng(1);
  EXPECT_DOUBLE_EQ(rng.normal(3.5, 0.0), 3.5);
}

TEST(RngTest, NormalRejectsNegativeSd) {
  Rng rng(1);
  EXPECT_THROW(rng.normal(0.0, -1.0), std::invalid_argument);
}

TEST(RngTest, BinomialBounds) {
  Rng rng(29);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t k = rng.binomial(50, 0.4);
    EXPECT_LE(k, 50u);
  }
  EXPECT_EQ(rng.binomial(0, 0.5), 0u);
  EXPECT_EQ(rng.binomial(10, 0.0), 0u);
  EXPECT_EQ(rng.binomial(10, 1.0), 10u);
}

TEST(RngTest, BinomialMeanRoughlyNp) {
  Rng rng(31);
  double sum = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.binomial(100, 0.25));
  EXPECT_NEAR(sum / n, 25.0, 0.5);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(37);
  const std::vector<double> w = {0.0, 3.0, 1.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 10000; ++i) counts[rng.categorical(w)]++;
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / 10000.0, 0.75, 0.03);
}

TEST(RngTest, CategoricalRejectsDegenerateWeights) {
  Rng rng(1);
  const std::vector<double> empty;
  const std::vector<double> zeros = {0.0, 0.0};
  const std::vector<double> negative = {1.0, -1.0};
  EXPECT_THROW(rng.categorical(empty), std::invalid_argument);
  EXPECT_THROW(rng.categorical(zeros), std::invalid_argument);
  EXPECT_THROW(rng.categorical(negative), std::invalid_argument);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(41);
  const auto sample = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const std::size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(43);
  const auto sample = rng.sample_without_replacement(5, 5);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, SampleWithoutReplacementRejectsOversample) {
  Rng rng(43);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(47);
  std::vector<int> v(20);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), shuffled.begin()));
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(1);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_THROW(rng.poisson(-1.0), std::invalid_argument);
}

TEST(RngTest, ExponentialPositive) {
  Rng rng(53);
  for (int i = 0; i < 100; ++i) EXPECT_GT(rng.exponential(2.0), 0.0);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace vdbench::stats
