#include "stats/matrix.h"

#include <gtest/gtest.h>

#include <vector>

namespace vdbench::stats {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 0) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 0), 7.0);
}

TEST(MatrixTest, RejectsZeroDimensions) {
  EXPECT_THROW(Matrix(0, 3), std::invalid_argument);
  EXPECT_THROW(Matrix(3, 0), std::invalid_argument);
}

TEST(MatrixTest, InitializerList) {
  const Matrix m = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(MatrixTest, RejectsRaggedInitializer) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(MatrixTest, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
}

TEST(MatrixTest, IdentityMultiplication) {
  const Matrix m = {{1.0, 2.0}, {3.0, 4.0}};
  const Matrix id = Matrix::identity(2);
  EXPECT_TRUE(m.multiply(id).approx_equal(m, 1e-12));
  EXPECT_TRUE(id.multiply(m).approx_equal(m, 1e-12));
}

TEST(MatrixTest, KnownProduct) {
  const Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b = {{5.0, 6.0}, {7.0, 8.0}};
  const Matrix expected = {{19.0, 22.0}, {43.0, 50.0}};
  EXPECT_TRUE(a.multiply(b).approx_equal(expected, 1e-12));
}

TEST(MatrixTest, ProductDimensionMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a.multiply(b), std::invalid_argument);
}

TEST(MatrixTest, MatrixVectorProduct) {
  const Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  const std::vector<double> v = {1.0, 1.0};
  const std::vector<double> out = a.multiply(v);
  EXPECT_DOUBLE_EQ(out[0], 3.0);
  EXPECT_DOUBLE_EQ(out[1], 7.0);
}

TEST(MatrixTest, Transpose) {
  const Matrix a = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(MatrixTest, RowAndColumnCopies) {
  const Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(a.row(1), (std::vector<double>{3.0, 4.0}));
  EXPECT_EQ(a.column(0), (std::vector<double>{1.0, 3.0}));
  EXPECT_THROW(a.row(2), std::out_of_range);
  EXPECT_THROW(a.column(2), std::out_of_range);
}

TEST(EigenTest, DiagonalMatrixPrincipalPair) {
  const Matrix m = {{3.0, 0.0}, {0.0, 1.0}};
  const EigenResult r = principal_eigenpair(m);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.eigenvalue, 3.0, 1e-6);
  EXPECT_NEAR(r.eigenvector[0], 1.0, 1e-6);
  EXPECT_NEAR(r.eigenvector[1], 0.0, 1e-6);
}

TEST(EigenTest, ConsistentReciprocalMatrix) {
  // Perfectly consistent pairwise matrix from weights {0.6, 0.3, 0.1}:
  // principal eigenvalue equals n and eigenvector recovers the weights.
  const Matrix m = {{1.0, 2.0, 6.0},
                    {0.5, 1.0, 3.0},
                    {1.0 / 6.0, 1.0 / 3.0, 1.0}};
  const EigenResult r = principal_eigenpair(m);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.eigenvalue, 3.0, 1e-6);
  EXPECT_NEAR(r.eigenvector[0], 0.6, 1e-6);
  EXPECT_NEAR(r.eigenvector[1], 0.3, 1e-6);
  EXPECT_NEAR(r.eigenvector[2], 0.1, 1e-6);
}

TEST(EigenTest, EigenvectorSumsToOne) {
  const Matrix m = {{1.0, 4.0}, {0.25, 1.0}};
  const EigenResult r = principal_eigenpair(m);
  EXPECT_NEAR(r.eigenvector[0] + r.eigenvector[1], 1.0, 1e-9);
}

TEST(EigenTest, RejectsNonSquare) {
  const Matrix m(2, 3);
  EXPECT_THROW(principal_eigenpair(m), std::invalid_argument);
}

TEST(NormalizeTest, SumsToOne) {
  const std::vector<double> v = {2.0, 3.0, 5.0};
  const std::vector<double> n = normalize_to_sum_one(v);
  EXPECT_DOUBLE_EQ(n[0], 0.2);
  EXPECT_DOUBLE_EQ(n[1], 0.3);
  EXPECT_DOUBLE_EQ(n[2], 0.5);
}

TEST(NormalizeTest, RejectsDegenerate) {
  const std::vector<double> zeros = {0.0, 0.0};
  const std::vector<double> negative = {1.0, -0.5};
  EXPECT_THROW(normalize_to_sum_one(zeros), std::invalid_argument);
  EXPECT_THROW(normalize_to_sum_one(negative), std::invalid_argument);
}

}  // namespace
}  // namespace vdbench::stats
