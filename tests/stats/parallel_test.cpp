#include "stats/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "fault/injector.h"
#include "stats/rng.h"

namespace vdbench::stats {
namespace {

TEST(ParallelExecutorTest, RunsEveryIndexExactlyOnce) {
  ParallelExecutor exec(4);
  std::vector<std::atomic<int>> hits(100);
  exec.parallel_for_indexed(100, [&](std::size_t i) { hits[i]++; });
  for (const std::atomic<int>& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelExecutorTest, ZeroTasksIsNoOp) {
  ParallelExecutor exec(4);
  bool called = false;
  exec.parallel_for_indexed(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelExecutorTest, FewerTasksThanThreads) {
  ParallelExecutor exec(8);
  std::vector<std::atomic<int>> hits(3);
  exec.parallel_for_indexed(3, [&](std::size_t i) { hits[i]++; });
  for (const std::atomic<int>& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelExecutorTest, SingleThreadPoolRunsInline) {
  ParallelExecutor exec(1);
  EXPECT_EQ(exec.thread_count(), 1u);
  std::vector<int> order;
  exec.parallel_for_indexed(5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));  // safe: inline serial execution
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelExecutorTest, ExceptionFromTaskPropagates) {
  ParallelExecutor exec(4);
  EXPECT_THROW(
      exec.parallel_for_indexed(
          16,
          [&](std::size_t i) {
            if (i == 7) throw std::runtime_error("task 7 failed");
          }),
      std::runtime_error);
}

TEST(ParallelExecutorTest, LowestIndexExceptionWinsAndAllTasksRun) {
  for (const std::size_t threads : {1u, 4u}) {
    ParallelExecutor exec(threads);
    std::vector<std::atomic<int>> hits(32);
    try {
      exec.parallel_for_indexed(32, [&](std::size_t i) {
        hits[i]++;
        if (i == 20) throw std::runtime_error("late");
        if (i == 5) throw std::invalid_argument("early");
      });
      FAIL() << "expected an exception";
    } catch (const std::invalid_argument& e) {
      EXPECT_STREQ(e.what(), "early");
    }
    // Failure must not cancel the sweep: every slot was still visited.
    for (const std::atomic<int>& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelExecutorTest, ExecutorIsReusableAfterException) {
  ParallelExecutor exec(4);
  EXPECT_THROW(exec.parallel_for_indexed(
                   4, [](std::size_t) { throw std::runtime_error("boom"); }),
               std::runtime_error);
  std::atomic<int> sum{0};
  exec.parallel_for_indexed(10, [&](std::size_t i) {
    sum += static_cast<int>(i);
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ParallelExecutorTest, NestedCallsRunInline) {
  ParallelExecutor exec(4);
  std::vector<std::atomic<int>> hits(8 * 8);
  exec.parallel_for_indexed(8, [&](std::size_t outer) {
    // A nested fan-out on the same fixed pool must not deadlock; it runs
    // inline on the worker.
    exec.parallel_for_indexed(8, [&](std::size_t inner) {
      hits[outer * 8 + inner]++;
    });
  });
  for (const std::atomic<int>& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelExecutorTest, IndexedRngSplitIsThreadCountInvariant) {
  // The canonical usage pattern: pre-split children in index order, write
  // to slot i. The result must be identical for every pool size.
  const auto run_with = [](std::size_t threads) {
    ParallelExecutor exec(threads);
    Rng rng(12345);
    std::vector<Rng> children;
    children.reserve(64);
    for (std::size_t i = 0; i < 64; ++i) children.push_back(rng.split(i));
    std::vector<double> out(64);
    exec.parallel_for_indexed(64, [&](std::size_t i) {
      double acc = 0.0;
      for (int d = 0; d < 100; ++d) acc += children[i].uniform();
      out[i] = acc;
    });
    return out;
  };
  const std::vector<double> serial = run_with(1);
  EXPECT_EQ(serial, run_with(2));
  EXPECT_EQ(serial, run_with(8));
}

TEST(ParallelExecutorTest, DefaultThreadCountIsAtLeastOne) {
  EXPECT_GE(ParallelExecutor::default_thread_count(), 1u);
}

TEST(GlobalExecutorTest, SetGlobalThreadsReplacesPool) {
  set_global_threads(2);
  EXPECT_EQ(global_executor().thread_count(), 2u);
  std::vector<std::atomic<int>> hits(10);
  parallel_for_indexed(10, [&](std::size_t i) { hits[i]++; });
  for (const std::atomic<int>& h : hits) EXPECT_EQ(h.load(), 1);
  set_global_threads(0);  // back to the environment/hardware default
  EXPECT_GE(global_executor().thread_count(), 1u);
}

// --- cooperative cancellation --------------------------------------------

TEST(CancellationTest, NoTokenInstalledMeansNeverCancelled) {
  EXPECT_FALSE(cancellation_requested());
}

TEST(CancellationTest, ScopedTokenInstallsAndRestores) {
  CancellationToken token;
  {
    ScopedCancellationToken install(&token);
    EXPECT_FALSE(cancellation_requested());
    token.request_cancel();
    EXPECT_TRUE(cancellation_requested());
  }
  EXPECT_FALSE(cancellation_requested());  // restored on scope exit
  token.reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(CancellationTest, DoubleCancelIsIdempotent) {
  // The header contract: request_cancel() any number of times, from any
  // thread, is a no-op beyond the first. Teardown racing a watchdog must
  // be safe by contract, so hammer the token from several threads at once.
  CancellationToken token;
  token.request_cancel();
  token.request_cancel();  // same-thread double cancel
  EXPECT_TRUE(token.cancelled());
  std::vector<std::thread> racers;
  for (int t = 0; t < 4; ++t)
    racers.emplace_back([&token] {
      for (int i = 0; i < 1000; ++i) token.request_cancel();
    });
  for (std::thread& racer : racers) racer.join();
  EXPECT_TRUE(token.cancelled());
  token.reset();
  EXPECT_FALSE(token.cancelled());
  // A reset token cancels cleanly again — no one-shot latching.
  token.request_cancel();
  EXPECT_TRUE(token.cancelled());
}

TEST(CancellationTest, CancelBeforeInstallIsObservedOnFirstPoll) {
  // Cancel-before-start: the token fires before it is even installed, and
  // the very first poll after installation sees it.
  CancellationToken token;
  token.request_cancel();
  ScopedCancellationToken install(&token);
  EXPECT_TRUE(cancellation_requested());
}

TEST(CancellationTest, PreCancelledTokenThrowsCancelledImmediately) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ParallelExecutor executor(threads);
    CancellationToken token;
    ScopedCancellationToken install(&token);
    token.request_cancel();
    std::atomic<int> ran{0};
    EXPECT_THROW(
        executor.parallel_for_indexed(64, [&](std::size_t) { ++ran; }),
        Cancelled);
    EXPECT_EQ(ran.load(), 0);  // workers never claimed a task
  }
}

TEST(CancellationTest, MidRunCancelDrainsAndThrowsCancelled) {
  ParallelExecutor executor(4);
  CancellationToken token;
  ScopedCancellationToken install(&token);
  std::atomic<int> ran{0};
  EXPECT_THROW(executor.parallel_for_indexed(10000,
                                             [&](std::size_t i) {
                                               if (i == 0)
                                                 token.request_cancel();
                                               std::this_thread::sleep_for(
                                                   std::chrono::
                                                       microseconds(10));
                                               ++ran;
                                             }),
               Cancelled);
  EXPECT_LT(ran.load(), 10000);  // stopped claiming well before the end
}

TEST(CancellationTest, CancellationOutranksTaskErrors) {
  // When the watchdog fired AND a task threw, the supervisor must see
  // Cancelled — the task error on a cancelled run is scheduling noise.
  ParallelExecutor executor(2);
  CancellationToken token;
  ScopedCancellationToken install(&token);
  EXPECT_THROW(executor.parallel_for_indexed(100,
                                             [&](std::size_t i) {
                                               token.request_cancel();
                                               if (i % 2 == 0)
                                                 throw std::runtime_error(
                                                     "task error");
                                             }),
               Cancelled);
}

// --- executor.task fault injection ---------------------------------------

class ExecutorFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::Injector::global().disarm(); }
};

TEST_F(ExecutorFaultTest, KeyedThrowFaultHitsTheSameTaskAtAnyThreadCount) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    fault::Injector::global().arm("executor.task=throw@17:1");
    ParallelExecutor executor(threads);
    std::vector<int> ran(64, 0);
    try {
      executor.parallel_for_indexed(64, [&](std::size_t i) { ran[i] = 1; });
      FAIL() << "expected InjectedFault";
    } catch (const fault::InjectedFault& e) {
      EXPECT_NE(std::string(e.what()).find("index 17"), std::string::npos);
    }
    // Deterministic blast radius: exactly task 17 was replaced by the
    // fault; every other task still ran (the executor drains on error).
    EXPECT_EQ(ran[17], 0);
    for (std::size_t i = 0; i < 64; ++i)
      if (i != 17) EXPECT_EQ(ran[i], 1) << "task " << i;
    fault::Injector::global().disarm();
  }
}

TEST_F(ExecutorFaultTest, DisarmedInjectorAddsNoFaults) {
  ParallelExecutor executor(4);
  std::atomic<int> ran{0};
  executor.parallel_for_indexed(256, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 256);
}

}  // namespace
}  // namespace vdbench::stats
