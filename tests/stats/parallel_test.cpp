#include "stats/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "stats/rng.h"

namespace vdbench::stats {
namespace {

TEST(ParallelExecutorTest, RunsEveryIndexExactlyOnce) {
  ParallelExecutor exec(4);
  std::vector<std::atomic<int>> hits(100);
  exec.parallel_for_indexed(100, [&](std::size_t i) { hits[i]++; });
  for (const std::atomic<int>& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelExecutorTest, ZeroTasksIsNoOp) {
  ParallelExecutor exec(4);
  bool called = false;
  exec.parallel_for_indexed(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelExecutorTest, FewerTasksThanThreads) {
  ParallelExecutor exec(8);
  std::vector<std::atomic<int>> hits(3);
  exec.parallel_for_indexed(3, [&](std::size_t i) { hits[i]++; });
  for (const std::atomic<int>& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelExecutorTest, SingleThreadPoolRunsInline) {
  ParallelExecutor exec(1);
  EXPECT_EQ(exec.thread_count(), 1u);
  std::vector<int> order;
  exec.parallel_for_indexed(5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));  // safe: inline serial execution
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelExecutorTest, ExceptionFromTaskPropagates) {
  ParallelExecutor exec(4);
  EXPECT_THROW(
      exec.parallel_for_indexed(
          16,
          [&](std::size_t i) {
            if (i == 7) throw std::runtime_error("task 7 failed");
          }),
      std::runtime_error);
}

TEST(ParallelExecutorTest, LowestIndexExceptionWinsAndAllTasksRun) {
  for (const std::size_t threads : {1u, 4u}) {
    ParallelExecutor exec(threads);
    std::vector<std::atomic<int>> hits(32);
    try {
      exec.parallel_for_indexed(32, [&](std::size_t i) {
        hits[i]++;
        if (i == 20) throw std::runtime_error("late");
        if (i == 5) throw std::invalid_argument("early");
      });
      FAIL() << "expected an exception";
    } catch (const std::invalid_argument& e) {
      EXPECT_STREQ(e.what(), "early");
    }
    // Failure must not cancel the sweep: every slot was still visited.
    for (const std::atomic<int>& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelExecutorTest, ExecutorIsReusableAfterException) {
  ParallelExecutor exec(4);
  EXPECT_THROW(exec.parallel_for_indexed(
                   4, [](std::size_t) { throw std::runtime_error("boom"); }),
               std::runtime_error);
  std::atomic<int> sum{0};
  exec.parallel_for_indexed(10, [&](std::size_t i) {
    sum += static_cast<int>(i);
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ParallelExecutorTest, NestedCallsRunInline) {
  ParallelExecutor exec(4);
  std::vector<std::atomic<int>> hits(8 * 8);
  exec.parallel_for_indexed(8, [&](std::size_t outer) {
    // A nested fan-out on the same fixed pool must not deadlock; it runs
    // inline on the worker.
    exec.parallel_for_indexed(8, [&](std::size_t inner) {
      hits[outer * 8 + inner]++;
    });
  });
  for (const std::atomic<int>& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelExecutorTest, IndexedRngSplitIsThreadCountInvariant) {
  // The canonical usage pattern: pre-split children in index order, write
  // to slot i. The result must be identical for every pool size.
  const auto run_with = [](std::size_t threads) {
    ParallelExecutor exec(threads);
    Rng rng(12345);
    std::vector<Rng> children;
    children.reserve(64);
    for (std::size_t i = 0; i < 64; ++i) children.push_back(rng.split(i));
    std::vector<double> out(64);
    exec.parallel_for_indexed(64, [&](std::size_t i) {
      double acc = 0.0;
      for (int d = 0; d < 100; ++d) acc += children[i].uniform();
      out[i] = acc;
    });
    return out;
  };
  const std::vector<double> serial = run_with(1);
  EXPECT_EQ(serial, run_with(2));
  EXPECT_EQ(serial, run_with(8));
}

TEST(ParallelExecutorTest, DefaultThreadCountIsAtLeastOne) {
  EXPECT_GE(ParallelExecutor::default_thread_count(), 1u);
}

TEST(GlobalExecutorTest, SetGlobalThreadsReplacesPool) {
  set_global_threads(2);
  EXPECT_EQ(global_executor().thread_count(), 2u);
  std::vector<std::atomic<int>> hits(10);
  parallel_for_indexed(10, [&](std::size_t i) { hits[i]++; });
  for (const std::atomic<int>& h : hits) EXPECT_EQ(h.load(), 1);
  set_global_threads(0);  // back to the environment/hardware default
  EXPECT_GE(global_executor().thread_count(), 1u);
}

}  // namespace
}  // namespace vdbench::stats
