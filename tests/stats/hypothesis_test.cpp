#include "stats/hypothesis.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/rng.h"

namespace vdbench::stats {
namespace {

std::vector<double> normal_sample(std::size_t n, double mean, double sd,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (double& x : out) x = rng.normal(mean, sd);
  return out;
}

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-3);
}

TEST(NormalQuantileTest, InvertsCdf) {
  for (const double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-8) << "p=" << p;
  }
}

TEST(NormalQuantileTest, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-5);
}

TEST(NormalQuantileTest, RejectsBoundary) {
  EXPECT_THROW(normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW(normal_quantile(1.0), std::invalid_argument);
}

TEST(WelchTest, DetectsClearDifference) {
  const auto xs = normal_sample(100, 0.0, 1.0, 1);
  const auto ys = normal_sample(100, 2.0, 1.0, 2);
  const TestResult r = welch_t_test(xs, ys);
  EXPECT_LT(r.p_value, 0.001);
  EXPECT_TRUE(r.significant_at(0.05));
  EXPECT_LT(r.statistic, 0.0);  // xs mean below ys mean
}

TEST(WelchTest, NoDifferenceGivesLargePValue) {
  const auto xs = normal_sample(200, 1.0, 1.0, 3);
  const auto ys = normal_sample(200, 1.0, 1.0, 4);
  const TestResult r = welch_t_test(xs, ys);
  EXPECT_GT(r.p_value, 0.01);
}

TEST(WelchTest, PValueInUnitInterval) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const auto xs = normal_sample(30, rng.uniform(), 1.0, 100 + trial);
    const auto ys = normal_sample(40, rng.uniform(), 2.0, 200 + trial);
    const TestResult r = welch_t_test(xs, ys);
    EXPECT_GE(r.p_value, 0.0);
    EXPECT_LE(r.p_value, 1.0);
  }
}

TEST(WelchTest, IdenticalConstantSamples) {
  const std::vector<double> xs = {2.0, 2.0, 2.0};
  const TestResult r = welch_t_test(xs, xs);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(WelchTest, RequiresTwoPerSample) {
  const std::vector<double> one = {1.0};
  const std::vector<double> two = {1.0, 2.0};
  EXPECT_THROW(welch_t_test(one, two), std::invalid_argument);
}

TEST(SignTest, DetectsConsistentShift) {
  std::vector<double> xs(30), ys(30);
  for (int i = 0; i < 30; ++i) {
    xs[i] = i;
    ys[i] = i - 1.0;
  }
  const TestResult r = sign_test(xs, ys);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(SignTest, BalancedSignsNotSignificant) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys = {2.0, 1.0, 4.0, 3.0};
  const TestResult r = sign_test(xs, ys);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(SignTest, DropsZeroDifferences) {
  const std::vector<double> xs = {1.0, 5.0, 5.0, 5.0};
  const std::vector<double> ys = {1.0, 4.0, 4.0, 4.0};
  const TestResult r = sign_test(xs, ys);
  EXPECT_DOUBLE_EQ(r.statistic, 3.0);  // three positive differences
}

TEST(SignTest, AllZeroDifferencesThrow) {
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_THROW(sign_test(xs, xs), std::invalid_argument);
}

TEST(CohensDTest, KnownEffectSize) {
  const auto xs = normal_sample(5000, 1.0, 1.0, 6);
  const auto ys = normal_sample(5000, 0.0, 1.0, 7);
  EXPECT_NEAR(cohens_d(xs, ys), 1.0, 0.06);
}

TEST(CohensDTest, SignedDirection) {
  const auto xs = normal_sample(500, 0.0, 1.0, 8);
  const auto ys = normal_sample(500, 1.0, 1.0, 9);
  EXPECT_LT(cohens_d(xs, ys), 0.0);
}

TEST(ProbabilityOfSuperiorityTest, SeparatedSamples) {
  const std::vector<double> hi = {10.0, 11.0, 12.0};
  const std::vector<double> lo = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(probability_of_superiority(hi, lo), 1.0);
  EXPECT_DOUBLE_EQ(probability_of_superiority(lo, hi), 0.0);
}

TEST(ProbabilityOfSuperiorityTest, TiesCountHalf) {
  const std::vector<double> xs = {1.0};
  const std::vector<double> ys = {1.0};
  EXPECT_DOUBLE_EQ(probability_of_superiority(xs, ys), 0.5);
}

TEST(WilsonIntervalTest, BracketsTheProportion) {
  const ProportionInterval pi = wilson_interval(70.0, 100.0);
  EXPECT_DOUBLE_EQ(pi.estimate, 0.7);
  EXPECT_LT(pi.lower, 0.7);
  EXPECT_GT(pi.upper, 0.7);
  EXPECT_GT(pi.lower, 0.59);
  EXPECT_LT(pi.upper, 0.79);
}

TEST(WilsonIntervalTest, WellBehavedAtExtremes) {
  const ProportionInterval zero = wilson_interval(0.0, 50.0);
  EXPECT_DOUBLE_EQ(zero.estimate, 0.0);
  EXPECT_DOUBLE_EQ(zero.lower, 0.0);
  EXPECT_GT(zero.upper, 0.0);  // unlike the Wald interval
  const ProportionInterval one = wilson_interval(50.0, 50.0);
  EXPECT_DOUBLE_EQ(one.upper, 1.0);
  EXPECT_LT(one.lower, 1.0);
}

TEST(WilsonIntervalTest, NarrowsWithMoreTrials) {
  const double w_small =
      wilson_interval(7.0, 10.0).upper - wilson_interval(7.0, 10.0).lower;
  const double w_large = wilson_interval(700.0, 1000.0).upper -
                         wilson_interval(700.0, 1000.0).lower;
  EXPECT_LT(w_large, w_small);
}

TEST(WilsonIntervalTest, HigherConfidenceIsWider) {
  const ProportionInterval p90 = wilson_interval(30.0, 100.0, 0.90);
  const ProportionInterval p99 = wilson_interval(30.0, 100.0, 0.99);
  EXPECT_GT(p99.upper - p99.lower, p90.upper - p90.lower);
}

TEST(WilsonIntervalTest, AcceptsFractionalSuccesses) {
  EXPECT_NO_THROW(wilson_interval(12.5, 40.0));
}

TEST(WilsonIntervalTest, RejectsBadArguments) {
  EXPECT_THROW(wilson_interval(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(wilson_interval(-1.0, 10.0), std::invalid_argument);
  EXPECT_THROW(wilson_interval(11.0, 10.0), std::invalid_argument);
  EXPECT_THROW(wilson_interval(5.0, 10.0, 1.0), std::invalid_argument);
}

TEST(ProbabilityOfSuperiorityTest, MatchesAucInterpretation) {
  // For two unit-variance normals one d' apart, P(X>Y) = Phi(d'/sqrt(2)).
  const auto xs = normal_sample(2000, 1.0, 1.0, 10);
  const auto ys = normal_sample(2000, 0.0, 1.0, 11);
  EXPECT_NEAR(probability_of_superiority(xs, ys),
              normal_cdf(1.0 / std::sqrt(2.0)), 0.02);
}

}  // namespace
}  // namespace vdbench::stats
