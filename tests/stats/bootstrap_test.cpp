#include "stats/bootstrap.h"

#include <gtest/gtest.h>

#include <vector>

#include "stats/descriptive.h"

namespace vdbench::stats {
namespace {

std::vector<double> normal_sample(std::size_t n, double mean, double sd,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (double& x : out) x = rng.normal(mean, sd);
  return out;
}

TEST(BootstrapTest, MeanCiBracketsSampleMean) {
  const auto sample = normal_sample(200, 5.0, 1.0, 1);
  Rng rng(2);
  const ConfidenceInterval ci = bootstrap_mean_ci(sample, rng, 800);
  EXPECT_LE(ci.lower, ci.estimate);
  EXPECT_GE(ci.upper, ci.estimate);
  EXPECT_DOUBLE_EQ(ci.estimate, mean(sample));
}

TEST(BootstrapTest, MeanCiContainsTrueMeanForWellBehavedData) {
  const auto sample = normal_sample(400, 5.0, 1.0, 3);
  Rng rng(4);
  const ConfidenceInterval ci = bootstrap_mean_ci(sample, rng, 1000, 0.99);
  EXPECT_TRUE(ci.contains(5.0)) << "[" << ci.lower << "," << ci.upper << "]";
}

TEST(BootstrapTest, NarrowerWithMoreData) {
  Rng rng(5);
  const auto small = normal_sample(50, 0.0, 1.0, 6);
  const auto large = normal_sample(5000, 0.0, 1.0, 7);
  const double w_small = bootstrap_mean_ci(small, rng, 500).width();
  const double w_large = bootstrap_mean_ci(large, rng, 500).width();
  EXPECT_LT(w_large, w_small);
}

TEST(BootstrapTest, DeterministicGivenSeed) {
  const auto sample = normal_sample(100, 1.0, 2.0, 8);
  Rng a(9), b(9);
  const ConfidenceInterval ca = bootstrap_mean_ci(sample, a, 300);
  const ConfidenceInterval cb = bootstrap_mean_ci(sample, b, 300);
  EXPECT_DOUBLE_EQ(ca.lower, cb.lower);
  EXPECT_DOUBLE_EQ(ca.upper, cb.upper);
}

TEST(BootstrapTest, CustomStatisticMedian) {
  const std::vector<double> sample = {1.0, 2.0, 3.0, 4.0, 100.0};
  Rng rng(10);
  const ConfidenceInterval ci = bootstrap_ci(
      sample, [](std::span<const double> xs) { return median(xs); }, rng,
      500);
  EXPECT_DOUBLE_EQ(ci.estimate, 3.0);
  EXPECT_GE(ci.lower, 1.0);
  EXPECT_LE(ci.upper, 100.0);
}

TEST(BootstrapTest, DegenerateSampleGivesZeroWidth) {
  const std::vector<double> same = {4.0, 4.0, 4.0, 4.0};
  Rng rng(11);
  const ConfidenceInterval ci = bootstrap_mean_ci(same, rng, 200);
  EXPECT_DOUBLE_EQ(ci.lower, 4.0);
  EXPECT_DOUBLE_EQ(ci.upper, 4.0);
}

TEST(BootstrapTest, RejectsBadArguments) {
  const std::vector<double> empty;
  const std::vector<double> ok = {1.0, 2.0};
  Rng rng(12);
  EXPECT_THROW(bootstrap_mean_ci(empty, rng), std::invalid_argument);
  EXPECT_THROW(bootstrap_mean_ci(ok, rng, 0), std::invalid_argument);
  EXPECT_THROW(bootstrap_mean_ci(ok, rng, 100, 0.0), std::invalid_argument);
  EXPECT_THROW(bootstrap_mean_ci(ok, rng, 100, 1.0), std::invalid_argument);
}

TEST(BootstrapTest, StandardErrorShrinksWithSampleSize) {
  Rng rng(13);
  const auto small = normal_sample(50, 0.0, 1.0, 14);
  const auto large = normal_sample(5000, 0.0, 1.0, 15);
  const Statistic stat = [](std::span<const double> xs) { return mean(xs); };
  const double se_small = bootstrap_standard_error(small, stat, rng, 400);
  const double se_large = bootstrap_standard_error(large, stat, rng, 400);
  EXPECT_LT(se_large, se_small);
}

TEST(BootstrapTest, StandardErrorApproximatesAnalytic) {
  const auto sample = normal_sample(1000, 0.0, 2.0, 16);
  Rng rng(17);
  const Statistic stat = [](std::span<const double> xs) { return mean(xs); };
  const double se = bootstrap_standard_error(sample, stat, rng, 1000);
  EXPECT_NEAR(se, standard_error(sample), 0.01);
}

}  // namespace
}  // namespace vdbench::stats
