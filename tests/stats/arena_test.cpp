// Unit tests for the bump allocator backing the batch metric kernels.
#include "stats/arena.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <thread>

namespace vdbench::stats {
namespace {

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena;
  void* a = arena.allocate(1, 1);
  void* b = arena.allocate(8, 64);
  void* c = arena.allocate(3, 2);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 2, 0u);
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_GE(arena.used(), std::size_t{12});
}

TEST(ArenaTest, ZeroByteAllocationIsValid) {
  Arena arena;
  EXPECT_NE(arena.allocate(0, 8), nullptr);
}

TEST(ArenaTest, NonPowerOfTwoAlignmentThrows) {
  Arena arena;
  EXPECT_THROW((void)arena.allocate(8, 3), std::invalid_argument);
  EXPECT_THROW((void)arena.allocate(8, 0), std::invalid_argument);
}

TEST(ArenaTest, GrowsGeometricallyAcrossBlocks) {
  Arena arena(/*first_block_bytes=*/128);
  (void)arena.allocate(128, 1);
  EXPECT_EQ(arena.block_count(), 1u);
  (void)arena.allocate(129, 1);  // does not fit the first block
  EXPECT_EQ(arena.block_count(), 2u);
  EXPECT_GE(arena.capacity(), std::size_t{128 + 256});
  // An oversized request gets a block at least that large.
  (void)arena.allocate(10'000, 8);
  EXPECT_GE(arena.capacity(), std::size_t{10'000});
}

TEST(ArenaTest, ResetRetainsBlocksAndReusesMemory) {
  Arena arena(/*first_block_bytes=*/256);
  void* first = arena.allocate(64, 8);
  (void)arena.allocate(4096, 8);  // force a second block
  const std::size_t capacity = arena.capacity();
  const std::size_t blocks = arena.block_count();
  arena.reset();
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.capacity(), capacity);
  EXPECT_EQ(arena.block_count(), blocks);
  // Steady state: the same memory is handed out again, no new blocks.
  EXPECT_EQ(arena.allocate(64, 8), first);
  EXPECT_EQ(arena.block_count(), blocks);
}

TEST(ArenaTest, AllocateSpanIsTypedAndWritable) {
  Arena arena;
  const std::span<double> xs = arena.allocate_span<double>(10);
  ASSERT_EQ(xs.size(), 10u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(xs.data()) % alignof(double), 0u);
  for (std::size_t i = 0; i < xs.size(); ++i)
    xs[i] = static_cast<double>(i);
  EXPECT_EQ(xs[9], 9.0);
  const std::span<double> empty = arena.allocate_span<double>(0);
  EXPECT_EQ(empty.size(), 0u);
}

TEST(ArenaTest, PoisonModeFillsReclaimedMemoryOnReset) {
  ASSERT_EQ(setenv("VDBENCH_ARENA_POISON", "1", 1), 0);
  Arena arena;  // reads the env var at construction
  unsetenv("VDBENCH_ARENA_POISON");
  ASSERT_TRUE(arena.poison_enabled());
  const std::span<unsigned char> bytes = arena.allocate_span<unsigned char>(64);
  std::fill(bytes.begin(), bytes.end(), static_cast<unsigned char>(0));
  unsigned char* raw = bytes.data();
  arena.reset();
  // The block is retained, so the old storage is still owned by the arena
  // and must now read back as the poison pattern.
  for (std::size_t i = 0; i < 64; ++i)
    ASSERT_EQ(raw[i], 0xA5u) << "byte " << i << " not poisoned";
}

TEST(ArenaTest, PoisonDisabledByDefault) {
  unsetenv("VDBENCH_ARENA_POISON");
  Arena arena;
  EXPECT_FALSE(arena.poison_enabled());
}

TEST(ArenaTest, ScratchIsPerThread) {
  Arena* main_scratch = &Arena::scratch();
  Arena* other_scratch = nullptr;
  std::thread worker([&] { other_scratch = &Arena::scratch(); });
  worker.join();
  EXPECT_EQ(main_scratch, &Arena::scratch());
  EXPECT_NE(main_scratch, other_scratch);
}

}  // namespace
}  // namespace vdbench::stats
