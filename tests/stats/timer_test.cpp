#include "stats/timer.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vdbench::stats {
namespace {

TEST(StageTimerTest, RecordAccumulatesByLabel) {
  StageTimer timer;
  timer.record("load", 1.0);
  timer.record("compute", 2.0);
  timer.record("load", 0.5);
  ASSERT_EQ(timer.stages().size(), 2u);
  EXPECT_EQ(timer.stages()[0].label, "load");
  EXPECT_DOUBLE_EQ(timer.stages()[0].seconds, 1.5);
  EXPECT_EQ(timer.stages()[0].calls, 2u);
  EXPECT_EQ(timer.stages()[1].label, "compute");
  EXPECT_DOUBLE_EQ(timer.total_seconds(), 3.5);
}

TEST(StageTimerTest, RecordRejectsNegativeDuration) {
  StageTimer timer;
  EXPECT_THROW(timer.record("x", -1.0), std::invalid_argument);
}

TEST(StageTimerTest, ScopeRecordsElapsedTime) {
  StageTimer timer;
  {
    // vdlint:allow(vdl-phase-literal)
    const auto scope = timer.scope("work");
    volatile double sink = 0.0;
    for (int i = 0; i < 10000; ++i) sink = sink + static_cast<double>(i);
  }
  ASSERT_EQ(timer.stages().size(), 1u);
  EXPECT_EQ(timer.stages()[0].label, "work");
  EXPECT_GE(timer.stages()[0].seconds, 0.0);
  EXPECT_EQ(timer.stages()[0].calls, 1u);
}

TEST(StageTimerTest, MovedFromScopeDoesNotDoubleRecord) {
  StageTimer timer;
  {
    // vdlint:allow(vdl-phase-literal)
    auto outer = [&] { return timer.scope("phase"); }();
    (void)outer;
  }
  ASSERT_EQ(timer.stages().size(), 1u);
  EXPECT_EQ(timer.stages()[0].calls, 1u);
}

TEST(StageTimerTest, PreservesFirstRecordedOrder) {
  StageTimer timer;
  timer.record("c", 0.1);
  timer.record("a", 0.1);
  timer.record("b", 0.1);
  timer.record("a", 0.1);
  ASSERT_EQ(timer.stages().size(), 3u);
  EXPECT_EQ(timer.stages()[0].label, "c");
  EXPECT_EQ(timer.stages()[1].label, "a");
  EXPECT_EQ(timer.stages()[2].label, "b");
}

}  // namespace
}  // namespace vdbench::stats
