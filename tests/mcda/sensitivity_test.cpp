#include "mcda/sensitivity.h"

#include <gtest/gtest.h>

#include <cmath>

#include "mcda/weighted_sum.h"

namespace vdbench::mcda {
namespace {

TEST(WeightSensitivityTest, DominantWinnerIsFullyStable) {
  // Alternative 0 wins every criterion: no weight perturbation can flip it.
  const stats::Matrix scores = {{0.9, 0.9, 0.9},
                                {0.5, 0.4, 0.6},
                                {0.2, 0.3, 0.1}};
  const std::vector<double> w = {0.4, 0.4, 0.2};
  stats::Rng rng(1);
  const SensitivityResult r = weight_sensitivity(scores, w, 0.5, 300, rng);
  EXPECT_DOUBLE_EQ(r.top_choice_stability, 1.0);
  EXPECT_DOUBLE_EQ(r.win_share[0], 1.0);
  EXPECT_EQ(r.trials, 300u);
}

TEST(WeightSensitivityTest, KnifeEdgeWinnerIsUnstable) {
  // Two alternatives each winning one criterion with near-equal weights:
  // perturbation flips the winner often.
  const stats::Matrix scores = {{1.0, 0.0}, {0.0, 1.0}};
  const std::vector<double> w = {0.51, 0.49};
  stats::Rng rng(2);
  const SensitivityResult r = weight_sensitivity(scores, w, 0.4, 500, rng);
  EXPECT_LT(r.top_choice_stability, 0.9);
  EXPECT_GT(r.top_choice_stability, 0.1);
  EXPECT_NEAR(r.win_share[0] + r.win_share[1], 1.0, 1e-12);
  EXPECT_GT(r.mean_kendall_distance, 0.0);
}

TEST(WeightSensitivityTest, StabilityDecreasesWithPerturbation) {
  const stats::Matrix scores = {{0.8, 0.2}, {0.4, 0.7}};
  const std::vector<double> w = {0.6, 0.4};
  stats::Rng r1(3), r2(3);
  const double stable_small =
      weight_sensitivity(scores, w, 0.05, 400, r1).top_choice_stability;
  const double stable_large =
      weight_sensitivity(scores, w, 1.0, 400, r2).top_choice_stability;
  EXPECT_GE(stable_small, stable_large);
}

TEST(WeightSensitivityTest, DeterministicGivenSeed) {
  const stats::Matrix scores = {{0.8, 0.2}, {0.4, 0.7}};
  const std::vector<double> w = {0.5, 0.5};
  stats::Rng a(4), b(4);
  const SensitivityResult ra = weight_sensitivity(scores, w, 0.3, 200, a);
  const SensitivityResult rb = weight_sensitivity(scores, w, 0.3, 200, b);
  EXPECT_DOUBLE_EQ(ra.top_choice_stability, rb.top_choice_stability);
  EXPECT_DOUBLE_EQ(ra.mean_kendall_distance, rb.mean_kendall_distance);
}

TEST(WeightSensitivityTest, RejectsBadArguments) {
  const stats::Matrix scores = {{0.5, 0.5}, {0.4, 0.6}};
  const std::vector<double> w = {0.5, 0.5};
  stats::Rng rng(5);
  EXPECT_THROW(weight_sensitivity(scores, w, 0.0, 100, rng),
               std::invalid_argument);
  EXPECT_THROW(weight_sensitivity(scores, w, 0.3, 0, rng),
               std::invalid_argument);
}

TEST(CriticalWeightFactorsTest, DominantWinnerNeverFlips) {
  const stats::Matrix scores = {{0.9, 0.9}, {0.5, 0.5}};
  const std::vector<double> w = {0.5, 0.5};
  for (const double f : critical_weight_factors(scores, w))
    EXPECT_TRUE(std::isnan(f));
}

TEST(CriticalWeightFactorsTest, FindsFlippingFactor) {
  // Alternative 0 wins on criterion 0, loses criterion 1; shrinking w0 (or
  // growing w1) eventually flips the winner.
  const stats::Matrix scores = {{1.0, 0.0}, {0.0, 1.0}};
  const std::vector<double> w = {0.6, 0.4};
  const std::vector<double> factors = critical_weight_factors(scores, w);
  ASSERT_EQ(factors.size(), 2u);
  EXPECT_TRUE(std::isfinite(factors[0]));
  EXPECT_LT(factors[0], 1.0) << "criterion 0 weight must shrink to flip";
  EXPECT_TRUE(std::isfinite(factors[1]));
  EXPECT_GT(factors[1], 1.0) << "criterion 1 weight must grow to flip";
  // Verify the reported factor really flips the winner.
  std::vector<double> flipped = w;
  flipped[0] *= factors[0];
  const auto scores_flipped = weighted_sum_scores(scores, flipped);
  EXPECT_GT(scores_flipped[1], scores_flipped[0]);
}

TEST(CriticalWeightFactorsTest, RejectsBadLimit) {
  const stats::Matrix scores = {{0.5, 0.5}, {0.4, 0.6}};
  const std::vector<double> w = {0.5, 0.5};
  EXPECT_THROW(critical_weight_factors(scores, w, 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace vdbench::mcda
