#include "mcda/topsis.h"

#include <gtest/gtest.h>

namespace vdbench::mcda {
namespace {

TEST(TopsisTest, DominantAlternativeWins) {
  const stats::Matrix scores = {{0.9, 0.9}, {0.5, 0.5}, {0.1, 0.1}};
  const std::vector<double> w = {0.5, 0.5};
  const std::vector<CriterionKind> kinds = {CriterionKind::kBenefit,
                                            CriterionKind::kBenefit};
  const std::vector<double> c = topsis_closeness(scores, w, kinds);
  EXPECT_GT(c[0], c[1]);
  EXPECT_GT(c[1], c[2]);
  EXPECT_DOUBLE_EQ(c[0], 1.0);  // coincides with ideal
  EXPECT_DOUBLE_EQ(c[2], 0.0);  // coincides with anti-ideal
}

TEST(TopsisTest, ClosenessInUnitInterval) {
  const stats::Matrix scores = {{0.3, 0.9, 0.2},
                                {0.8, 0.1, 0.5},
                                {0.6, 0.6, 0.6}};
  const std::vector<double> w = {0.2, 0.5, 0.3};
  const std::vector<CriterionKind> kinds(3, CriterionKind::kBenefit);
  for (const double c : topsis_closeness(scores, w, kinds)) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
}

TEST(TopsisTest, CostCriterionInvertsPreference) {
  const stats::Matrix scores = {{0.9}, {0.1}};
  const std::vector<double> w = {1.0};
  const std::vector<CriterionKind> benefit = {CriterionKind::kBenefit};
  const std::vector<CriterionKind> cost = {CriterionKind::kCost};
  EXPECT_GT(topsis_closeness(scores, w, benefit)[0],
            topsis_closeness(scores, w, benefit)[1]);
  EXPECT_LT(topsis_closeness(scores, w, cost)[0],
            topsis_closeness(scores, w, cost)[1]);
}

TEST(TopsisTest, WeightShiftsWinner) {
  // Alternative 0 wins criterion 0, alternative 1 wins criterion 1.
  const stats::Matrix scores = {{0.9, 0.1}, {0.1, 0.9}};
  const std::vector<CriterionKind> kinds(2, CriterionKind::kBenefit);
  const std::vector<double> favor_first = {0.9, 0.1};
  const std::vector<double> favor_second = {0.1, 0.9};
  const auto c1 = topsis_closeness(scores, favor_first, kinds);
  const auto c2 = topsis_closeness(scores, favor_second, kinds);
  EXPECT_GT(c1[0], c1[1]);
  EXPECT_LT(c2[0], c2[1]);
}

TEST(TopsisTest, IdenticalAlternativesGetNeutralCloseness) {
  const stats::Matrix scores = {{0.5, 0.5}, {0.5, 0.5}};
  const std::vector<double> w = {0.5, 0.5};
  const std::vector<CriterionKind> kinds(2, CriterionKind::kBenefit);
  const auto c = topsis_closeness(scores, w, kinds);
  EXPECT_DOUBLE_EQ(c[0], 0.5);
  EXPECT_DOUBLE_EQ(c[1], 0.5);
}

TEST(TopsisTest, RejectsBadInput) {
  const stats::Matrix scores = {{0.5, 0.5}};
  const std::vector<double> short_w = {1.0};
  const std::vector<CriterionKind> kinds(2, CriterionKind::kBenefit);
  const std::vector<CriterionKind> short_kinds(1, CriterionKind::kBenefit);
  const std::vector<double> w = {0.5, 0.5};
  EXPECT_THROW(topsis_closeness(scores, short_w, kinds),
               std::invalid_argument);
  EXPECT_THROW(topsis_closeness(scores, w, short_kinds),
               std::invalid_argument);
  const stats::Matrix zero_col = {{0.0, 1.0}, {0.0, 0.5}};
  EXPECT_THROW(topsis_closeness(zero_col, w, kinds), std::invalid_argument);
}

}  // namespace
}  // namespace vdbench::mcda
