#include "mcda/aggregate.h"

#include <gtest/gtest.h>

#include <vector>

namespace vdbench::mcda {
namespace {

using Ranking = std::vector<std::size_t>;

TEST(BordaTest, SingleRanking) {
  const std::vector<Ranking> rankings = {{2, 0, 1}};
  const std::vector<double> scores = borda_scores(rankings);
  EXPECT_DOUBLE_EQ(scores[2], 2.0);
  EXPECT_DOUBLE_EQ(scores[0], 1.0);
  EXPECT_DOUBLE_EQ(scores[1], 0.0);
}

TEST(BordaTest, MajorityWins) {
  const std::vector<Ranking> rankings = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2}};
  const std::vector<double> scores = borda_scores(rankings);
  EXPECT_GT(scores[0], scores[1]);
  EXPECT_GT(scores[1], scores[2]);
}

TEST(BordaTest, RejectsNonPermutation) {
  const std::vector<Ranking> dup = {{0, 0, 1}};
  const std::vector<Ranking> out_of_range = {{0, 1, 3}};
  const std::vector<Ranking> mismatch = {{0, 1, 2}, {0, 1}};
  EXPECT_THROW(borda_scores(dup), std::invalid_argument);
  EXPECT_THROW(borda_scores(out_of_range), std::invalid_argument);
  EXPECT_THROW(borda_scores(mismatch), std::invalid_argument);
  EXPECT_THROW(borda_scores(std::vector<Ranking>{}), std::invalid_argument);
}

TEST(CopelandTest, PairwiseMajority) {
  // 0 beats 1 and 2 in most rankings; 1 beats 2.
  const std::vector<Ranking> rankings = {{0, 1, 2}, {0, 1, 2}, {2, 0, 1}};
  const std::vector<double> scores = copeland_scores(rankings);
  EXPECT_DOUBLE_EQ(scores[0], 2.0);
  EXPECT_DOUBLE_EQ(scores[1], 0.0);
  EXPECT_DOUBLE_EQ(scores[2], -2.0);
}

TEST(CopelandTest, PerfectTieGivesZeros) {
  const std::vector<Ranking> rankings = {{0, 1}, {1, 0}};
  const std::vector<double> scores = copeland_scores(rankings);
  EXPECT_DOUBLE_EQ(scores[0], 0.0);
  EXPECT_DOUBLE_EQ(scores[1], 0.0);
}

TEST(RankingFromScoresTest, DescendingWithStableTies) {
  const std::vector<double> scores = {1.0, 3.0, 3.0, 0.5};
  const Ranking expected = {1, 2, 0, 3};
  EXPECT_EQ(ranking_from_scores(scores), expected);
}

TEST(KendallDistanceTest, IdenticalIsZero) {
  const Ranking a = {0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(kendall_distance(a, a), 0.0);
}

TEST(KendallDistanceTest, ReversedIsOne) {
  const Ranking a = {0, 1, 2, 3};
  const Ranking b = {3, 2, 1, 0};
  EXPECT_DOUBLE_EQ(kendall_distance(a, b), 1.0);
}

TEST(KendallDistanceTest, SingleSwap) {
  const Ranking a = {0, 1, 2, 3};
  const Ranking b = {0, 1, 3, 2};
  EXPECT_DOUBLE_EQ(kendall_distance(a, b), 1.0 / 6.0);
}

TEST(KendallDistanceTest, Symmetric) {
  const Ranking a = {2, 0, 3, 1};
  const Ranking b = {1, 3, 0, 2};
  EXPECT_DOUBLE_EQ(kendall_distance(a, b), kendall_distance(b, a));
}

TEST(KendallDistanceTest, RejectsTiny) {
  const Ranking one = {0};
  EXPECT_THROW(kendall_distance(one, one), std::invalid_argument);
}

TEST(AggregationPipelineTest, BordaConsensusOfNoisyCopies) {
  // Three near-copies of the same order must aggregate back to it.
  const std::vector<Ranking> rankings = {
      {0, 1, 2, 3, 4}, {0, 2, 1, 3, 4}, {1, 0, 2, 3, 4}};
  const Ranking consensus = ranking_from_scores(borda_scores(rankings));
  EXPECT_EQ(consensus, (Ranking{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace vdbench::mcda
