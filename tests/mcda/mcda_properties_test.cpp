// Property-based tests across the whole MCDA suite: invariants that must
// hold on random inputs — dominance consistency (an alternative that is
// at least as good on every criterion never ranks strictly worse), range
// bounds, and cross-method agreement on dominated alternatives.
#include <gtest/gtest.h>

#include <cmath>

#include "mcda/electre.h"
#include "mcda/promethee.h"
#include "mcda/topsis.h"
#include "mcda/weighted_sum.h"
#include "stats/rng.h"

namespace vdbench::mcda {
namespace {

stats::Matrix random_scores(std::size_t alts, std::size_t crits,
                            stats::Rng& rng) {
  stats::Matrix m(alts, crits, 0.0);
  for (std::size_t a = 0; a < alts; ++a)
    for (std::size_t c = 0; c < crits; ++c)
      m(a, c) = rng.uniform(0.05, 1.0);
  return m;
}

std::vector<double> random_weights(std::size_t crits, stats::Rng& rng) {
  std::vector<double> w(crits);
  for (double& x : w) x = rng.uniform(0.1, 1.0);
  return w;
}

// Plant a dominant alternative at row 0 (element-wise max + epsilon).
void plant_dominant(stats::Matrix& scores) {
  for (std::size_t c = 0; c < scores.cols(); ++c) {
    double hi = 0.0;
    for (std::size_t a = 1; a < scores.rows(); ++a)
      hi = std::max(hi, scores(a, c));
    scores(0, c) = std::min(1.0, hi + 0.01);
  }
}

class McdaPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(RandomSeeds, McdaPropertyTest,
                         ::testing::Values(11u, 23u, 37u, 53u, 71u));

TEST_P(McdaPropertyTest, DominantAlternativeWinsEveryMethod) {
  stats::Rng rng(GetParam());
  stats::Matrix scores = random_scores(6, 4, rng);
  plant_dominant(scores);
  const std::vector<double> w = random_weights(4, rng);

  const auto wsm = weighted_sum_scores(scores, w);
  EXPECT_EQ(std::max_element(wsm.begin(), wsm.end()) - wsm.begin(), 0);

  const auto wpm = weighted_product_scores(scores, w);
  EXPECT_EQ(std::max_element(wpm.begin(), wpm.end()) - wpm.begin(), 0);

  const std::vector<CriterionKind> kinds(4, CriterionKind::kBenefit);
  const auto topsis = topsis_closeness(scores, w, kinds);
  EXPECT_EQ(std::max_element(topsis.begin(), topsis.end()) - topsis.begin(),
            0);

  const auto flows = promethee_flows(scores, w);
  EXPECT_EQ(std::max_element(flows.net_flow.begin(), flows.net_flow.end()) -
                flows.net_flow.begin(),
            0);

  const auto electre = electre_outranking(scores, w);
  for (std::size_t b = 1; b < 6; ++b)
    EXPECT_GE(electre.net_score[0], electre.net_score[b]);
}

TEST_P(McdaPropertyTest, TopsisClosenessBounded) {
  stats::Rng rng(GetParam() + 100);
  const stats::Matrix scores = random_scores(8, 5, rng);
  const std::vector<double> w = random_weights(5, rng);
  const std::vector<CriterionKind> kinds(5, CriterionKind::kBenefit);
  for (const double c : topsis_closeness(scores, w, kinds)) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
}

TEST_P(McdaPropertyTest, PrometheeFlowsBoundedAndBalanced) {
  stats::Rng rng(GetParam() + 200);
  const stats::Matrix scores = random_scores(7, 3, rng);
  const std::vector<double> w = random_weights(3, rng);
  const PrometheeResult r = promethee_flows(scores, w);
  double net_sum = 0.0;
  for (std::size_t a = 0; a < 7; ++a) {
    EXPECT_GE(r.positive_flow[a], 0.0);
    EXPECT_LE(r.positive_flow[a], 1.0);
    EXPECT_GE(r.negative_flow[a], 0.0);
    EXPECT_LE(r.negative_flow[a], 1.0);
    net_sum += r.net_flow[a];
  }
  EXPECT_NEAR(net_sum, 0.0, 1e-9);
}

TEST_P(McdaPropertyTest, ElectreMatricesWithinBounds) {
  stats::Rng rng(GetParam() + 300);
  const stats::Matrix scores = random_scores(6, 4, rng);
  const std::vector<double> w = random_weights(4, rng);
  const ElectreResult r = electre_outranking(scores, w);
  for (std::size_t a = 0; a < 6; ++a) {
    for (std::size_t b = 0; b < 6; ++b) {
      if (a == b) continue;
      EXPECT_GE(r.concordance(a, b), 0.0);
      EXPECT_LE(r.concordance(a, b), 1.0 + 1e-12);
      EXPECT_GE(r.discordance(a, b), 0.0);
      EXPECT_LE(r.discordance(a, b), 1.0 + 1e-12);
      // Concordance of (a,b) and strict-discordance structure: if a beats
      // b on every criterion, concordance is 1 and discordance 0.
    }
  }
}

TEST_P(McdaPropertyTest, WeightScalingIsIrrelevant) {
  stats::Rng rng(GetParam() + 400);
  const stats::Matrix scores = random_scores(5, 4, rng);
  std::vector<double> w = random_weights(4, rng);
  std::vector<double> w_scaled = w;
  for (double& x : w_scaled) x *= 37.0;
  const auto a = weighted_sum_scores(scores, w);
  const auto b = weighted_sum_scores(scores, w_scaled);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST_P(McdaPropertyTest, MethodsAgreeOnStrictDominanceOrder) {
  // A chain where alternative i strictly dominates i+1 on every
  // criterion: every method must reproduce the chain order.
  stats::Rng rng(GetParam() + 500);
  const std::size_t n = 5;
  stats::Matrix scores(n, 3, 0.0);
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t c = 0; c < 3; ++c)
      scores(a, c) =
          0.9 - 0.15 * static_cast<double>(a) + rng.uniform(0.0, 0.03);
  const std::vector<double> w = random_weights(3, rng);
  const auto check_descending = [&](const std::vector<double>& s) {
    for (std::size_t i = 0; i + 1 < n; ++i) EXPECT_GT(s[i], s[i + 1]);
  };
  check_descending(weighted_sum_scores(scores, w));
  check_descending(weighted_product_scores(scores, w));
  const std::vector<CriterionKind> kinds(3, CriterionKind::kBenefit);
  check_descending(topsis_closeness(scores, w, kinds));
  check_descending(promethee_flows(scores, w).net_flow);
}

}  // namespace
}  // namespace vdbench::mcda
