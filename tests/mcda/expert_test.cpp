#include "mcda/expert.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vdbench::mcda {
namespace {

ExpertPersona consistent_persona() {
  ExpertPersona p;
  p.name = "oracle";
  p.latent_weights = {0.5, 0.3, 0.2};
  p.judgment_noise = 0.0;
  return p;
}

TEST(ExpertPersonaTest, ValidationCatchesBadFields) {
  ExpertPersona p = consistent_persona();
  EXPECT_NO_THROW(p.validate());
  p.latent_weights.clear();
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = consistent_persona();
  p.latent_weights[1] = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = consistent_persona();
  p.judgment_noise = -0.1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ExpertPersonaTest, NoiselessExpertIsConsistent) {
  stats::Rng rng(1);
  const ComparisonMatrix cm = consistent_persona().judge(rng);
  const AhpResult r = ahp_priorities(cm);
  // Saaty snapping introduces at most mild inconsistency.
  EXPECT_LT(r.consistency_ratio, 0.05);
  // Weight order must be preserved.
  EXPECT_GT(r.weights[0], r.weights[1]);
  EXPECT_GT(r.weights[1], r.weights[2]);
}

TEST(ExpertPersonaTest, JudgmentsAreReciprocal) {
  ExpertPersona p = consistent_persona();
  p.judgment_noise = 0.5;
  stats::Rng rng(2);
  const ComparisonMatrix cm = p.judge(rng);
  for (std::size_t i = 0; i < cm.size(); ++i)
    for (std::size_t j = 0; j < cm.size(); ++j)
      EXPECT_NEAR(cm(i, j) * cm(j, i), 1.0, 1e-9);
}

TEST(ExpertPersonaTest, NoiseChangesJudgments) {
  ExpertPersona p = consistent_persona();
  p.judgment_noise = 0.8;
  stats::Rng r1(3), r2(4);
  const ComparisonMatrix a = p.judge(r1);
  const ComparisonMatrix b = p.judge(r2);
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i)
    for (std::size_t j = 0; j < a.size() && !differs; ++j)
      if (a(i, j) != b(i, j)) differs = true;
  EXPECT_TRUE(differs);
}

TEST(ExpertPanelTest, RejectsDegeneratePanels) {
  EXPECT_THROW(ExpertPanel{std::vector<ExpertPersona>{}},
               std::invalid_argument);
  ExpertPersona a = consistent_persona();
  ExpertPersona b = consistent_persona();
  b.latent_weights = {0.5, 0.5};
  EXPECT_THROW(ExpertPanel({a, b}), std::invalid_argument);
}

TEST(ExpertPanelTest, AggregationPreservesReciprocity) {
  stats::Rng rng(5);
  const ExpertPanel panel = make_panel(std::vector<double>{0.4, 0.3, 0.2, 0.1},
                                       5, 0.3, 0.3, rng);
  stats::Rng jrng(6);
  const ComparisonMatrix agg = panel.aggregate_judgments(jrng);
  for (std::size_t i = 0; i < agg.size(); ++i)
    for (std::size_t j = 0; j < agg.size(); ++j)
      EXPECT_NEAR(agg(i, j) * agg(j, i), 1.0, 1e-9);
}

TEST(ExpertPanelTest, LowNoisePanelRecoversLatentWeights) {
  const std::vector<double> latent = {0.45, 0.30, 0.15, 0.10};
  stats::Rng rng(7);
  const ExpertPanel panel = make_panel(latent, 9, 0.02, 0.02, rng);
  stats::Rng jrng(8);
  const AhpResult r = ahp_priorities(panel.aggregate_judgments(jrng));
  for (std::size_t i = 0; i < latent.size(); ++i)
    EXPECT_NEAR(r.weights[i], latent[i], 0.08) << i;
  // Order definitely preserved.
  EXPECT_GT(r.weights[0], r.weights[1]);
  EXPECT_GT(r.weights[1], r.weights[2]);
  EXPECT_GT(r.weights[2], r.weights[3]);
}

TEST(ExpertPanelTest, AggregationSmoothsIndividualInconsistency) {
  const std::vector<double> latent = {0.4, 0.3, 0.2, 0.1};
  stats::Rng rng(9);
  const ExpertPanel panel = make_panel(latent, 11, 0.1, 0.5, rng);
  stats::Rng jrng(10);
  const std::vector<ComparisonMatrix> individuals =
      panel.individual_judgments(jrng);
  double mean_cr = 0.0;
  for (const ComparisonMatrix& cm : individuals)
    mean_cr += ahp_priorities(cm).consistency_ratio;
  mean_cr /= static_cast<double>(individuals.size());
  stats::Rng arng(10);
  const double agg_cr =
      ahp_priorities(panel.aggregate_judgments(arng)).consistency_ratio;
  EXPECT_LT(agg_cr, mean_cr);
}

TEST(MakePanelTest, FloorsZeroWeights) {
  const std::vector<double> latent = {0.9, 0.0, 0.1};
  stats::Rng rng(11);
  EXPECT_NO_THROW(make_panel(latent, 3, 0.1, 0.1, rng));
}

TEST(MakePanelTest, RejectsBadArguments) {
  const std::vector<double> latent = {0.5, 0.5};
  stats::Rng rng(12);
  EXPECT_THROW(make_panel(latent, 0, 0.1, 0.1, rng), std::invalid_argument);
  EXPECT_THROW(make_panel(latent, 3, -0.1, 0.1, rng), std::invalid_argument);
}

TEST(MakePanelTest, DeterministicGivenSeed) {
  const std::vector<double> latent = {0.6, 0.4};
  stats::Rng a(13), b(13);
  const ExpertPanel pa = make_panel(latent, 4, 0.2, 0.2, a);
  const ExpertPanel pb = make_panel(latent, 4, 0.2, 0.2, b);
  for (std::size_t e = 0; e < 4; ++e)
    EXPECT_EQ(pa.experts()[e].latent_weights, pb.experts()[e].latent_weights);
}

}  // namespace
}  // namespace vdbench::mcda
