#include "mcda/weighted_sum.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vdbench::mcda {
namespace {

TEST(WeightedSumTest, HandComputed) {
  const stats::Matrix scores = {{1.0, 0.0}, {0.0, 1.0}, {0.6, 0.6}};
  const std::vector<double> w = {0.7, 0.3};
  const std::vector<double> out = weighted_sum_scores(scores, w);
  EXPECT_DOUBLE_EQ(out[0], 0.7);
  EXPECT_DOUBLE_EQ(out[1], 0.3);
  EXPECT_NEAR(out[2], 0.6, 1e-12);
}

TEST(WeightedSumTest, NormalizesWeights) {
  const stats::Matrix scores = {{1.0, 0.0}};
  const std::vector<double> w = {2.0, 6.0};
  EXPECT_DOUBLE_EQ(weighted_sum_scores(scores, w)[0], 0.25);
}

TEST(WeightedSumTest, DimensionMismatchThrows) {
  const stats::Matrix scores(2, 3);
  const std::vector<double> w = {1.0, 1.0};
  EXPECT_THROW(weighted_sum_scores(scores, w), std::invalid_argument);
}

TEST(WeightedProductTest, HandComputed) {
  const stats::Matrix scores = {{4.0, 1.0}, {1.0, 4.0}};
  const std::vector<double> w = {0.5, 0.5};
  const std::vector<double> out = weighted_product_scores(scores, w);
  EXPECT_NEAR(out[0], 2.0, 1e-12);
  EXPECT_NEAR(out[1], 2.0, 1e-12);
}

TEST(WeightedProductTest, GeometricMeanInterpretation) {
  const stats::Matrix scores = {{8.0, 2.0}};
  const std::vector<double> w = {1.0, 1.0};
  EXPECT_NEAR(weighted_product_scores(scores, w)[0], 4.0, 1e-12);
}

TEST(WeightedProductTest, RejectsNonPositiveScores) {
  const stats::Matrix zero = {{0.0, 1.0}};
  const stats::Matrix negative = {{-1.0, 1.0}};
  const std::vector<double> w = {0.5, 0.5};
  EXPECT_THROW(weighted_product_scores(zero, w), std::invalid_argument);
  EXPECT_THROW(weighted_product_scores(negative, w), std::invalid_argument);
}

TEST(WeightedModelsTest, AgreeOnDominance) {
  const stats::Matrix scores = {{0.9, 0.8}, {0.4, 0.3}};
  const std::vector<double> w = {0.5, 0.5};
  const auto wsm = weighted_sum_scores(scores, w);
  const auto wpm = weighted_product_scores(scores, w);
  EXPECT_GT(wsm[0], wsm[1]);
  EXPECT_GT(wpm[0], wpm[1]);
}

}  // namespace
}  // namespace vdbench::mcda
