#include "mcda/ahp.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vdbench::mcda {
namespace {

TEST(ComparisonMatrixTest, DefaultIsAllOnes) {
  const ComparisonMatrix cm(3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(cm(i, j), 1.0);
}

TEST(ComparisonMatrixTest, SetJudgmentMaintainsReciprocity) {
  ComparisonMatrix cm(3);
  cm.set_judgment(0, 1, 4.0);
  EXPECT_DOUBLE_EQ(cm(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(cm(1, 0), 0.25);
}

TEST(ComparisonMatrixTest, SetJudgmentRejectsBadInput) {
  ComparisonMatrix cm(3);
  EXPECT_THROW(cm.set_judgment(1, 1, 2.0), std::invalid_argument);
  EXPECT_THROW(cm.set_judgment(0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(cm.set_judgment(0, 1, -3.0), std::invalid_argument);
}

TEST(ComparisonMatrixTest, WrapValidatesReciprocity) {
  const stats::Matrix good = {{1.0, 2.0}, {0.5, 1.0}};
  EXPECT_NO_THROW(ComparisonMatrix{good});
  const stats::Matrix bad_diag = {{2.0, 2.0}, {0.5, 1.0}};
  EXPECT_THROW(ComparisonMatrix{bad_diag}, std::invalid_argument);
  const stats::Matrix not_reciprocal = {{1.0, 2.0}, {0.4, 1.0}};
  EXPECT_THROW(ComparisonMatrix{not_reciprocal}, std::invalid_argument);
  const stats::Matrix negative = {{1.0, -2.0}, {-0.5, 1.0}};
  EXPECT_THROW(ComparisonMatrix{negative}, std::invalid_argument);
}

TEST(SaatyScaleTest, SnapsToNearestScaleValue) {
  EXPECT_DOUBLE_EQ(snap_to_saaty_scale(1.0), 1.0);
  EXPECT_DOUBLE_EQ(snap_to_saaty_scale(3.2), 3.0);
  EXPECT_DOUBLE_EQ(snap_to_saaty_scale(12.0), 9.0);
  EXPECT_DOUBLE_EQ(snap_to_saaty_scale(0.26), 0.25);
  EXPECT_DOUBLE_EQ(snap_to_saaty_scale(0.05), 1.0 / 9.0);
}

TEST(SaatyScaleTest, RejectsNonPositive) {
  EXPECT_THROW(snap_to_saaty_scale(0.0), std::invalid_argument);
  EXPECT_THROW(snap_to_saaty_scale(-1.0), std::invalid_argument);
}

TEST(SaatyScaleTest, ReciprocalSymmetry) {
  for (const double r : {1.7, 2.5, 6.3, 0.9}) {
    EXPECT_NEAR(snap_to_saaty_scale(r) * snap_to_saaty_scale(1.0 / r), 1.0,
                1e-12);
  }
}

TEST(FromPrioritiesTest, ConsistentMatrixRecoversWeights) {
  const std::vector<double> w = {0.6, 0.3, 0.1};
  const ComparisonMatrix cm = ComparisonMatrix::from_priorities(w);
  const AhpResult r = ahp_priorities(cm);
  EXPECT_NEAR(r.weights[0], 0.6, 0.02);
  EXPECT_NEAR(r.weights[1], 0.3, 0.02);
  EXPECT_NEAR(r.weights[2], 0.1, 0.02);
  EXPECT_LT(r.consistency_ratio, 0.01);
}

TEST(FromPrioritiesTest, RejectsBadWeights) {
  const std::vector<double> empty;
  const std::vector<double> with_zero = {0.5, 0.0};
  EXPECT_THROW(ComparisonMatrix::from_priorities(empty),
               std::invalid_argument);
  EXPECT_THROW(ComparisonMatrix::from_priorities(with_zero),
               std::invalid_argument);
}

TEST(AhpTest, SaatyTextbookExample) {
  // Classic 3x3 example: A twice B, A four times C, B twice C —
  // perfectly consistent, weights (4/7, 2/7, 1/7).
  ComparisonMatrix cm(3);
  cm.set_judgment(0, 1, 2.0);
  cm.set_judgment(0, 2, 4.0);
  cm.set_judgment(1, 2, 2.0);
  const AhpResult r = ahp_priorities(cm);
  EXPECT_NEAR(r.lambda_max, 3.0, 1e-6);
  EXPECT_NEAR(r.weights[0], 4.0 / 7.0, 1e-6);
  EXPECT_NEAR(r.weights[1], 2.0 / 7.0, 1e-6);
  EXPECT_NEAR(r.weights[2], 1.0 / 7.0, 1e-6);
  EXPECT_NEAR(r.consistency_ratio, 0.0, 1e-9);
  EXPECT_TRUE(r.acceptable());
}

TEST(AhpTest, InconsistentJudgmentsFlagged) {
  // A > B, B > C, but C > A strongly: a preference cycle.
  ComparisonMatrix cm(3);
  cm.set_judgment(0, 1, 5.0);
  cm.set_judgment(1, 2, 5.0);
  cm.set_judgment(0, 2, 1.0 / 5.0);
  const AhpResult r = ahp_priorities(cm);
  EXPECT_GT(r.lambda_max, 3.0);
  EXPECT_GT(r.consistency_ratio, 0.10);
  EXPECT_FALSE(r.acceptable());
}

TEST(AhpTest, MildInconsistencyAcceptable) {
  ComparisonMatrix cm(3);
  cm.set_judgment(0, 1, 2.0);
  cm.set_judgment(0, 2, 5.0);  // consistent value would be 4
  cm.set_judgment(1, 2, 2.0);
  const AhpResult r = ahp_priorities(cm);
  EXPECT_GT(r.consistency_ratio, 0.0);
  EXPECT_TRUE(r.acceptable());
}

TEST(AhpTest, TwoByTwoAlwaysConsistent) {
  ComparisonMatrix cm(2);
  cm.set_judgment(0, 1, 7.0);
  const AhpResult r = ahp_priorities(cm);
  EXPECT_DOUBLE_EQ(r.consistency_ratio, 0.0);
  EXPECT_NEAR(r.weights[0], 7.0 / 8.0, 1e-9);
}

TEST(AhpTest, WeightsSumToOne) {
  ComparisonMatrix cm(4);
  cm.set_judgment(0, 1, 3.0);
  cm.set_judgment(0, 2, 5.0);
  cm.set_judgment(0, 3, 7.0);
  cm.set_judgment(1, 2, 2.0);
  cm.set_judgment(1, 3, 4.0);
  cm.set_judgment(2, 3, 2.0);
  const AhpResult r = ahp_priorities(cm);
  double sum = 0.0;
  for (const double w : r.weights) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(RandomIndexTest, SaatyTableValues) {
  EXPECT_DOUBLE_EQ(saaty_random_index(1), 0.0);
  EXPECT_DOUBLE_EQ(saaty_random_index(2), 0.0);
  EXPECT_DOUBLE_EQ(saaty_random_index(3), 0.58);
  EXPECT_DOUBLE_EQ(saaty_random_index(4), 0.90);
  EXPECT_DOUBLE_EQ(saaty_random_index(10), 1.49);
  EXPECT_DOUBLE_EQ(saaty_random_index(50), saaty_random_index(15));
}

TEST(AhpRatingsTest, WeightedSumOfScores) {
  const stats::Matrix scores = {{1.0, 0.0}, {0.0, 1.0}, {0.5, 0.5}};
  const std::vector<double> weights = {0.75, 0.25};
  const std::vector<double> out = ahp_rate_alternatives(scores, weights);
  EXPECT_DOUBLE_EQ(out[0], 0.75);
  EXPECT_DOUBLE_EQ(out[1], 0.25);
  EXPECT_DOUBLE_EQ(out[2], 0.5);
}

TEST(AhpRatingsTest, NormalizesWeights) {
  const stats::Matrix scores = {{1.0, 0.0}};
  const std::vector<double> weights = {3.0, 1.0};
  EXPECT_DOUBLE_EQ(ahp_rate_alternatives(scores, weights)[0], 0.75);
}

TEST(AhpRatingsTest, DimensionMismatchThrows) {
  const stats::Matrix scores(2, 3);
  const std::vector<double> weights = {1.0, 1.0};
  EXPECT_THROW(ahp_rate_alternatives(scores, weights), std::invalid_argument);
}

}  // namespace
}  // namespace vdbench::mcda
