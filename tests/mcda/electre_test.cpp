#include "mcda/electre.h"

#include <gtest/gtest.h>

namespace vdbench::mcda {
namespace {

TEST(ElectreConfigTest, Validation) {
  ElectreConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
  cfg.concordance_threshold = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = ElectreConfig{};
  cfg.discordance_threshold = -0.1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ElectreTest, DominantAlternativeOutranksAll) {
  const stats::Matrix scores = {{0.9, 0.9, 0.9},
                                {0.5, 0.6, 0.4},
                                {0.2, 0.1, 0.3}};
  const std::vector<double> w = {1.0, 1.0, 1.0};
  const ElectreResult r = electre_outranking(scores, w);
  EXPECT_DOUBLE_EQ(r.outranks(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(r.outranks(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(r.outranks(1, 0), 0.0);
  EXPECT_GT(r.net_score[0], r.net_score[1]);
  EXPECT_GT(r.net_score[1], r.net_score[2]);
}

TEST(ElectreTest, ConcordanceIsWeightShare) {
  // a beats b on criterion 0 (weight .7) and loses criterion 1 (.3).
  const stats::Matrix scores = {{1.0, 0.0}, {0.0, 1.0}};
  const std::vector<double> w = {0.7, 0.3};
  const ElectreResult r = electre_outranking(scores, w);
  EXPECT_DOUBLE_EQ(r.concordance(0, 1), 0.7);
  EXPECT_DOUBLE_EQ(r.concordance(1, 0), 0.3);
}

TEST(ElectreTest, DiscordanceIsNormalizedVeto) {
  const stats::Matrix scores = {{1.0, 0.5}, {0.0, 1.0}};
  const std::vector<double> w = {0.5, 0.5};
  const ElectreResult r = electre_outranking(scores, w);
  // a loses criterion 1 by 0.5 of its range (which is 0.5) -> D = 1.0.
  EXPECT_DOUBLE_EQ(r.discordance(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(r.discordance(1, 0), 1.0);  // b loses criterion 0 fully
}

TEST(ElectreTest, VetoBlocksOutranking) {
  // a wins 80% of the weight but loses one criterion catastrophically.
  const stats::Matrix scores = {{1.0, 1.0, 1.0, 1.0, 0.0},
                                {0.5, 0.5, 0.5, 0.5, 1.0}};
  const std::vector<double> w = {0.2, 0.2, 0.2, 0.2, 0.2};
  ElectreConfig cfg;
  cfg.concordance_threshold = 0.7;
  cfg.discordance_threshold = 0.3;
  const ElectreResult r = electre_outranking(scores, w, cfg);
  EXPECT_DOUBLE_EQ(r.concordance(0, 1), 0.8);
  EXPECT_DOUBLE_EQ(r.outranks(0, 1), 0.0) << "veto on criterion 5";
  // Relaxing the veto lets the outranking through.
  cfg.discordance_threshold = 1.0;
  const ElectreResult relaxed = electre_outranking(scores, w, cfg);
  EXPECT_DOUBLE_EQ(relaxed.outranks(0, 1), 1.0);
}

TEST(ElectreTest, ConstantCriterionIsNeutral) {
  const stats::Matrix scores = {{0.9, 0.5}, {0.1, 0.5}};
  const std::vector<double> w = {0.5, 0.5};
  const ElectreResult r = electre_outranking(scores, w);
  // Ties count toward concordance on the constant criterion.
  EXPECT_DOUBLE_EQ(r.concordance(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(r.discordance(0, 1), 0.0);
}

TEST(ElectreTest, RejectsBadInput) {
  const stats::Matrix one_alt = {{0.5, 0.5}};
  const std::vector<double> w = {0.5, 0.5};
  EXPECT_THROW(electre_outranking(one_alt, w), std::invalid_argument);
  const stats::Matrix ok = {{0.5, 0.5}, {0.4, 0.6}};
  const std::vector<double> short_w = {1.0};
  EXPECT_THROW(electre_outranking(ok, short_w), std::invalid_argument);
}

}  // namespace
}  // namespace vdbench::mcda
