#include "mcda/promethee.h"

#include <gtest/gtest.h>

namespace vdbench::mcda {
namespace {

TEST(PrometheeConfigTest, Validation) {
  PrometheeConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
  cfg.indifference_fraction = 0.5;
  cfg.preference_fraction = 0.3;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = PrometheeConfig{};
  cfg.preference_fraction = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(PrometheeTest, NetFlowsSumToZero) {
  const stats::Matrix scores = {{0.9, 0.1, 0.5},
                                {0.3, 0.8, 0.6},
                                {0.5, 0.5, 0.2}};
  const std::vector<double> w = {0.4, 0.4, 0.2};
  const PrometheeResult r = promethee_flows(scores, w);
  double sum = 0.0;
  for (const double phi : r.net_flow) sum += phi;
  EXPECT_NEAR(sum, 0.0, 1e-12);
}

TEST(PrometheeTest, DominantAlternativeHasTopNetFlow) {
  const stats::Matrix scores = {{0.9, 0.9}, {0.5, 0.5}, {0.1, 0.1}};
  const std::vector<double> w = {0.5, 0.5};
  const PrometheeResult r = promethee_flows(scores, w);
  EXPECT_GT(r.net_flow[0], r.net_flow[1]);
  EXPECT_GT(r.net_flow[1], r.net_flow[2]);
  EXPECT_GT(r.positive_flow[0], r.negative_flow[0]);
  EXPECT_LT(r.positive_flow[2], r.negative_flow[2]);
}

TEST(PrometheeTest, IndifferenceZoneSuppressesSmallDifferences) {
  PrometheeConfig cfg;
  cfg.indifference_fraction = 0.5;  // huge indifference zone
  cfg.preference_fraction = 0.9;
  // Range is fixed by the {1.0, 0.0} anchors; the 0.2 gap between the top
  // two alternatives is inside the indifference zone, so alternative 0
  // gains nothing over alternative 1 and nothing flows against alt 1.
  const stats::Matrix scores = {{1.0}, {0.8}, {0.0}};
  const std::vector<double> w = {1.0};
  const PrometheeResult r = promethee_flows(scores, w, cfg);
  EXPECT_DOUBLE_EQ(r.negative_flow[1], 0.0);
  // phi+(0) = (pi(0,1) + pi(0,2)) / 2 = (0 + 1) / 2.
  EXPECT_DOUBLE_EQ(r.positive_flow[0], 0.5);
  // phi+(1) = (0 + (0.8 - 0.5) / (0.9 - 0.5)) / 2 = 0.375.
  EXPECT_NEAR(r.positive_flow[1], 0.375, 1e-12);
  // Without the indifference zone the gap counts.
  cfg.indifference_fraction = 0.0;
  const PrometheeResult sharp = promethee_flows(scores, w, cfg);
  EXPECT_GT(sharp.negative_flow[1], 0.0);
}

TEST(PrometheeTest, FullPreferenceBeyondThreshold) {
  PrometheeConfig cfg;
  cfg.indifference_fraction = 0.0;
  cfg.preference_fraction = 0.5;
  const stats::Matrix scores = {{1.0}, {0.0}};
  const std::vector<double> w = {1.0};
  const PrometheeResult r = promethee_flows(scores, w, cfg);
  EXPECT_DOUBLE_EQ(r.positive_flow[0], 1.0);
  EXPECT_DOUBLE_EQ(r.negative_flow[0], 0.0);
  EXPECT_DOUBLE_EQ(r.net_flow[0], 1.0);
  EXPECT_DOUBLE_EQ(r.net_flow[1], -1.0);
}

TEST(PrometheeTest, LinearRampBetweenThresholds) {
  PrometheeConfig cfg;
  cfg.indifference_fraction = 0.0;
  cfg.preference_fraction = 1.0;
  // Three alternatives spanning the range; middle one is halfway.
  const stats::Matrix scores = {{1.0}, {0.5}, {0.0}};
  const std::vector<double> w = {1.0};
  const PrometheeResult r = promethee_flows(scores, w, cfg);
  // pi(0,1) = 0.5, pi(0,2) = 1.0 -> phi+(0) = 0.75.
  EXPECT_NEAR(r.positive_flow[0], 0.75, 1e-12);
}

TEST(PrometheeTest, ConstantCriterionContributesNothing) {
  const stats::Matrix scores = {{0.9, 0.5}, {0.1, 0.5}};
  const std::vector<double> w = {0.5, 0.5};
  const PrometheeResult r = promethee_flows(scores, w);
  EXPECT_GT(r.net_flow[0], 0.0);
  // Only criterion 0 differentiates; its weight share is 0.5 and the
  // difference exceeds the preference threshold -> pi(0,1) = 0.5.
  EXPECT_NEAR(r.positive_flow[0], 0.5, 1e-12);
}

TEST(PrometheeTest, RejectsBadInput) {
  const stats::Matrix one = {{0.5}};
  const std::vector<double> w = {1.0};
  EXPECT_THROW(promethee_flows(one, w), std::invalid_argument);
  const stats::Matrix ok = {{0.5, 0.6}, {0.4, 0.3}};
  const std::vector<double> short_w = {1.0};
  EXPECT_THROW(promethee_flows(ok, short_w), std::invalid_argument);
}

}  // namespace
}  // namespace vdbench::mcda
