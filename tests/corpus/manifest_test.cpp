// Ground-truth manifest tests: the documented schema parses, the CWE
// taxonomy mapping is total over vdsim and empty outside it, and every
// violation — schema drift, missing members, out-of-range values, duplicate
// sites — is rejected with a typed CorpusError.
#include "corpus/manifest.h"

#include <gtest/gtest.h>

#include <string>

#include "corpus/error.h"
#include "vdsim/vuln.h"

namespace vdbench::corpus {
namespace {

// The example from the header comment, condensed.
constexpr const char* kGoodManifest =
    R"({"schema":1,"name":"lint-fixtures",)"
    R"("rules":{"vdl-rand":"CWE-327","vdl-sql":"CWE-89"},)"
    R"("ecosystems":[{"name":"cpp-fixtures","sites":[)"
    R"({"uri":"a.cpp","line":5,"cwe":"CWE-327","vulnerable":true,)"
    R"("difficulty":0.4},)"
    R"({"uri":"a.cpp","line":9,"vulnerable":false}]}]})";

TEST(ManifestTest, ParsesTheDocumentedSchema) {
  const Manifest m = parse_manifest(kGoodManifest);
  EXPECT_EQ(m.name, "lint-fixtures");
  ASSERT_EQ(m.ecosystems.size(), 1u);
  EXPECT_EQ(m.ecosystems[0].name, "cpp-fixtures");
  ASSERT_EQ(m.ecosystems[0].sites.size(), 2u);
  EXPECT_EQ(m.site_count(), 2u);

  const TruthSite& vuln = m.ecosystems[0].sites[0];
  EXPECT_EQ(vuln.uri, "a.cpp");
  EXPECT_EQ(vuln.line, 5u);
  EXPECT_TRUE(vuln.vulnerable);
  EXPECT_EQ(vuln.vuln_class, vdsim::VulnClass::kWeakCrypto);
  EXPECT_DOUBLE_EQ(vuln.difficulty, 0.4);

  const TruthSite& clean = m.ecosystems[0].sites[1];
  EXPECT_FALSE(clean.vulnerable);
  EXPECT_DOUBLE_EQ(clean.difficulty, 0.5);  // the documented default

  ASSERT_EQ(m.rules.size(), 2u);
  EXPECT_EQ(m.rules.at("vdl-rand"), "CWE-327");
  EXPECT_EQ(m.rules.at("vdl-sql"), "CWE-89");
}

TEST(ManifestTest, RulesTableIsOptional) {
  const Manifest m = parse_manifest(
      R"({"schema":1,"name":"n","ecosystems":[{"name":"e","sites":[)"
      R"({"uri":"a","line":1,"vulnerable":false}]}]})");
  EXPECT_TRUE(m.rules.empty());
}

TEST(ManifestTest, VulnClassFromCweIsTotalOverTheTaxonomy) {
  for (const vdsim::VulnClass c : vdsim::all_vuln_classes()) {
    const auto mapped = vuln_class_from_cwe(vdsim::vuln_class_cwe(c));
    ASSERT_TRUE(mapped.has_value()) << vdsim::vuln_class_cwe(c);
    EXPECT_EQ(*mapped, c);
  }
  EXPECT_FALSE(vuln_class_from_cwe("CWE-9999").has_value());
  EXPECT_FALSE(vuln_class_from_cwe("").has_value());
  EXPECT_FALSE(vuln_class_from_cwe("cwe-89").has_value());  // case-exact
}

TEST(ManifestTest, RejectsSchemaDrift) {
  try {
    parse_manifest(R"({"schema":2,"name":"n","ecosystems":[)"
                   R"({"name":"e","sites":[)"
                   R"({"uri":"a","line":1,"vulnerable":false}]}]})");
    FAIL() << "schema 2 accepted";
  } catch (const CorpusError& e) {
    EXPECT_NE(std::string(e.what()).find("not supported"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(parse_manifest(R"({"name":"n","ecosystems":[]})"), CorpusError);
}

TEST(ManifestTest, RejectsMissingAndIllTypedMembers) {
  const char* broken[] = {
      R"({"schema":1,"ecosystems":[]})",  // no name
      R"({"schema":1,"name":"n"})",       // no ecosystems
      R"({"schema":1,"name":"n","ecosystems":[]})",  // empty ecosystems
      R"({"schema":1,"name":"n","ecosystems":[{"sites":[]}]})",  // no eco name
      // empty sites
      R"({"schema":1,"name":"n","ecosystems":[{"name":"e","sites":[]}]})",
      // site missing uri / line / vulnerable
      R"({"schema":1,"name":"n","ecosystems":[{"name":"e","sites":[)"
      R"({"line":1,"vulnerable":false}]}]})",
      R"({"schema":1,"name":"n","ecosystems":[{"name":"e","sites":[)"
      R"({"uri":"a","vulnerable":false}]}]})",
      R"({"schema":1,"name":"n","ecosystems":[{"name":"e","sites":[)"
      R"({"uri":"a","line":1}]}]})",
      // vulnerable must be a bool
      R"({"schema":1,"name":"n","ecosystems":[{"name":"e","sites":[)"
      R"({"uri":"a","line":1,"vulnerable":1}]}]})",
      // line must be a positive integer
      R"({"schema":1,"name":"n","ecosystems":[{"name":"e","sites":[)"
      R"({"uri":"a","line":0,"vulnerable":false}]}]})",
      // rules must be an object
      R"({"schema":1,"name":"n","rules":[],"ecosystems":[)"
      R"({"name":"e","sites":[{"uri":"a","line":1,"vulnerable":false}]}]})",
  };
  for (const char* text : broken)
    EXPECT_THROW(parse_manifest(text), CorpusError) << text;
}

TEST(ManifestTest, VulnerableSitesRequireAnInTaxonomyCwe) {
  // Missing cwe on a vulnerable site.
  EXPECT_THROW(
      parse_manifest(R"({"schema":1,"name":"n","ecosystems":[)"
                     R"({"name":"e","sites":[)"
                     R"({"uri":"a","line":1,"vulnerable":true}]}]})"),
      CorpusError);
  // A CWE outside the vdsim taxonomy cannot label ground truth.
  try {
    parse_manifest(R"({"schema":1,"name":"n","ecosystems":[)"
                   R"({"name":"e","sites":[{"uri":"a","line":1,)"
                   R"("cwe":"CWE-9999","vulnerable":true}]}]})");
    FAIL() << "unknown cwe accepted";
  } catch (const CorpusError& e) {
    EXPECT_NE(std::string(e.what()).find("outside the taxonomy"),
              std::string::npos)
        << e.what();
  }
  // A clean site may omit the cwe entirely — and an unknown cwe member on a
  // clean site is simply never consulted.
  EXPECT_EQ(parse_manifest(
                R"({"schema":1,"name":"n","ecosystems":[{"name":"e",)"
                R"("sites":[{"uri":"a","line":1,"vulnerable":false}]}]})")
                .site_count(),
            1u);
}

TEST(ManifestTest, RejectsOutOfRangeDifficulty) {
  for (const char* difficulty : {"-0.1", "1.01"}) {
    const std::string text =
        std::string(R"({"schema":1,"name":"n","ecosystems":[{"name":"e",)"
                    R"("sites":[{"uri":"a","line":1,"vulnerable":false,)"
                    R"("difficulty":)") +
        difficulty + "}]}]}";
    EXPECT_THROW(parse_manifest(text), CorpusError) << text;
  }
}

TEST(ManifestTest, RejectsDuplicateSitesAcrossEcosystems) {
  // Same (uri, line) in two different ecosystems: two truths for one
  // location cannot be scored.
  try {
    parse_manifest(R"({"schema":1,"name":"n","ecosystems":[)"
                   R"({"name":"e1","sites":[)"
                   R"({"uri":"a","line":7,"vulnerable":false}]},)"
                   R"({"name":"e2","sites":[)"
                   R"({"uri":"a","line":7,"vulnerable":false}]}]})");
    FAIL() << "duplicate site accepted";
  } catch (const CorpusError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate site"), std::string::npos)
        << e.what();
  }
  // Same uri at a different line is a different site: accepted.
  EXPECT_EQ(parse_manifest(
                R"({"schema":1,"name":"n","ecosystems":[)"
                R"({"name":"e1","sites":[)"
                R"({"uri":"a","line":7,"vulnerable":false},)"
                R"({"uri":"a","line":8,"vulnerable":false}]}]})")
                .site_count(),
            2u);
}

TEST(ManifestTest, StructuralDamageCarriesTheByteOffset) {
  const std::string good = kGoodManifest;
  const std::string torn = good.substr(0, good.size() - 10);
  try {
    parse_manifest(torn);
    FAIL() << "torn manifest accepted";
  } catch (const CorpusError& e) {
    EXPECT_GT(e.offset, 0u);
    EXPECT_LE(e.offset, torn.size());
    const std::string what = e.what();
    EXPECT_NE(what.find("ground-truth manifest corrupt"), std::string::npos)
        << what;
  }
}

}  // namespace
}  // namespace vdbench::corpus
