// SARIF reader tests: the vdlint golden report parses field-for-field, the
// documented defaults apply when optional members are omitted, and every
// structural or semantic violation raises a typed CorpusError — never a
// silent short parse.
#include "corpus/sarif.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "corpus/error.h"

namespace vdbench::corpus {
namespace {

namespace fs = std::filesystem;

const fs::path kRepoRoot{VDBENCH_SOURCE_DIR};

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), {}};
}

// Wrap a results[] body in the minimal valid SARIF envelope.
std::string with_results(const std::string& results) {
  return R"({"version":"2.1.0","runs":[{"tool":{"driver":{"name":"t"}},)"
         R"("results":[)" +
         results + "]}]}";
}

constexpr const char* kMinimalResult =
    R"({"ruleId":"r1","locations":[{"physicalLocation":)"
    R"({"artifactLocation":{"uri":"a.c"},"region":{"startLine":3}}}]})";

TEST(SarifReaderTest, ParsesTheVdlintGoldenReport) {
  const std::string text =
      slurp(kRepoRoot / "tests" / "lint" / "expected_fixtures.sarif");
  ASSERT_FALSE(text.empty());
  const SarifReport report = parse_sarif(text);
  EXPECT_EQ(report.tool_name, "vdlint");
  EXPECT_EQ(report.tool_version, "1.0.0");
  EXPECT_EQ(report.rules.size(), 14u);
  ASSERT_EQ(report.findings.size(), 14u);

  const SarifFinding& first = report.findings.front();
  EXPECT_EQ(first.rule_id, "vdl-env-prefix");
  EXPECT_EQ(first.level, "error");
  EXPECT_EQ(first.uri, "tests/lint/fixtures/env_prefix_fire.cpp");
  EXPECT_EQ(first.line, 4u);
  EXPECT_EQ(first.column, 46u);
  EXPECT_EQ(first.confidence, -1.0);  // vdlint reports no confidence

  // The rule inventory round-trips id + description + level.
  EXPECT_EQ(report.rules.front().id, "vdl-rand");
  EXPECT_EQ(report.rules.front().short_description,
            "std::rand/srand banned; use seeded stats::Rng");
  EXPECT_EQ(report.rules.front().level, "error");
}

TEST(SarifReaderTest, AppliesDocumentedDefaultsForOptionalMembers) {
  const SarifReport report = parse_sarif(with_results(kMinimalResult));
  EXPECT_EQ(report.tool_name, "t");
  EXPECT_EQ(report.tool_version, "");
  EXPECT_TRUE(report.rules.empty());
  ASSERT_EQ(report.findings.size(), 1u);
  const SarifFinding& f = report.findings.front();
  EXPECT_EQ(f.level, "warning");  // the SARIF default
  EXPECT_EQ(f.message, "");
  EXPECT_EQ(f.column, 0u);
  EXPECT_EQ(f.confidence, -1.0);
}

TEST(SarifReaderTest, ParsesConfidenceLevelAndMessageWhenPresent) {
  const std::string result =
      R"({"ruleId":"r1","level":"note","message":{"text":"hit"},)"
      R"("locations":[{"physicalLocation":{"artifactLocation":)"
      R"({"uri":"a.c"},"region":{"startLine":3,"startColumn":9}}}],)"
      R"("properties":{"confidence":0.625}})";
  const SarifReport report = parse_sarif(with_results(result));
  ASSERT_EQ(report.findings.size(), 1u);
  const SarifFinding& f = report.findings.front();
  EXPECT_EQ(f.level, "note");
  EXPECT_EQ(f.message, "hit");
  EXPECT_EQ(f.column, 9u);
  EXPECT_DOUBLE_EQ(f.confidence, 0.625);
}

TEST(SarifReaderTest, IgnoresUnknownMembersEverywhere) {
  const std::string text =
      R"({"$schema":"x","version":"2.1.0","extra":[1,2],"runs":[{)"
      R"("tool":{"driver":{"name":"t","extra":true}},"columnKind":"utf16",)"
      R"("results":[)" +
      std::string(kMinimalResult) + "]}]}";
  const SarifReport report = parse_sarif(text);
  EXPECT_EQ(report.findings.size(), 1u);
}

TEST(SarifReaderTest, ConcatenatesMultiRunDocumentsFirstRunNamesTheTool) {
  const std::string text =
      R"({"version":"2.1.0","runs":[)"
      R"({"tool":{"driver":{"name":"alpha","version":"9",)"
      R"("rules":[{"id":"ra"}]}},"results":[)" +
      std::string(kMinimalResult) +
      R"(]},{"tool":{"driver":{"name":"beta","rules":[{"id":"rb"}]}},)"
      R"("results":[)" +
      std::string(kMinimalResult) + "]}]}";
  const SarifReport report = parse_sarif(text);
  EXPECT_EQ(report.tool_name, "alpha");
  EXPECT_EQ(report.tool_version, "9");
  ASSERT_EQ(report.rules.size(), 2u);
  EXPECT_EQ(report.rules[0].id, "ra");
  EXPECT_EQ(report.rules[1].id, "rb");
  EXPECT_EQ(report.findings.size(), 2u);
}

TEST(SarifReaderTest, RejectsUnsupportedVersions) {
  try {
    (void)parse_sarif(R"({"version":"2.0.0","runs":[]})");
    FAIL() << "2.0.0 accepted";
  } catch (const CorpusError& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported SARIF version"),
              std::string::npos)
        << e.what();
  }
}

TEST(SarifReaderTest, RejectsNonObjectRootsAndEmptyRuns) {
  EXPECT_THROW(parse_sarif("[]"), CorpusError);
  EXPECT_THROW(parse_sarif("42"), CorpusError);
  EXPECT_THROW(parse_sarif(R"({"version":"2.1.0","runs":[]})"), CorpusError);
  EXPECT_THROW(parse_sarif(R"({"runs":[]})"), CorpusError);  // no version
  EXPECT_THROW(parse_sarif(R"({"version":"2.1.0"})"), CorpusError);
}

TEST(SarifReaderTest, RejectsResultsMissingRequiredMembers) {
  // Each mutation drops one required member; all must be loud.
  const char* broken[] = {
      // no ruleId
      R"({"locations":[{"physicalLocation":{"artifactLocation":)"
      R"({"uri":"a.c"},"region":{"startLine":3}}}]})",
      // no locations
      R"({"ruleId":"r1"})",
      // empty locations
      R"({"ruleId":"r1","locations":[]})",
      // no physicalLocation
      R"({"ruleId":"r1","locations":[{}]})",
      // no artifactLocation.uri
      R"({"ruleId":"r1","locations":[{"physicalLocation":)"
      R"({"artifactLocation":{},"region":{"startLine":3}}}]})",
      // no region.startLine
      R"({"ruleId":"r1","locations":[{"physicalLocation":)"
      R"({"artifactLocation":{"uri":"a.c"},"region":{}}}]})",
  };
  for (const char* result : broken)
    EXPECT_THROW(parse_sarif(with_results(result)), CorpusError) << result;
}

TEST(SarifReaderTest, RejectsIllTypedAndOutOfRangeValues) {
  // startLine must be a positive integer.
  EXPECT_THROW(parse_sarif(with_results(
                   R"({"ruleId":"r1","locations":[{"physicalLocation":)"
                   R"({"artifactLocation":{"uri":"a.c"},)"
                   R"("region":{"startLine":0}}}]})")),
               CorpusError);
  EXPECT_THROW(parse_sarif(with_results(
                   R"({"ruleId":"r1","locations":[{"physicalLocation":)"
                   R"({"artifactLocation":{"uri":"a.c"},)"
                   R"("region":{"startLine":2.5}}}]})")),
               CorpusError);
  // ruleId must be a string.
  EXPECT_THROW(parse_sarif(with_results(
                   R"({"ruleId":7,"locations":[{"physicalLocation":)"
                   R"({"artifactLocation":{"uri":"a.c"},)"
                   R"("region":{"startLine":3}}}]})")),
               CorpusError);
  // confidence outside [0, 1] in either direction.
  for (const char* confidence : {"-0.1", "1.5"}) {
    const std::string result =
        std::string(R"({"ruleId":"r1","locations":[{"physicalLocation":)"
                    R"({"artifactLocation":{"uri":"a.c"},)"
                    R"("region":{"startLine":3}}}],)"
                    R"("properties":{"confidence":)") +
        confidence + "}}";
    try {
      (void)parse_sarif(with_results(result));
      FAIL() << "confidence " << confidence << " accepted";
    } catch (const CorpusError& e) {
      EXPECT_NE(std::string(e.what()).find("must be in [0, 1]"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(SarifReaderTest, StructurallyDamagedDocumentsCarryTheByteOffset) {
  const std::string good = with_results(kMinimalResult);
  const std::string torn = good.substr(0, good.size() / 2);
  try {
    (void)parse_sarif(torn);
    FAIL() << "torn document accepted";
  } catch (const CorpusError& e) {
    EXPECT_GT(e.offset, 0u);
    EXPECT_LE(e.offset, torn.size());
    const std::string what = e.what();
    EXPECT_NE(what.find("SARIF report corrupt"), std::string::npos) << what;
    EXPECT_NE(what.find("at offset"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace vdbench::corpus
