// Synthetic corpus generator tests: byte-determinism (the property E19's
// cacheability rests on), render↔parse round trips, global (uri, line)
// uniqueness, and statistical sanity of the generated ground truth.
#include "corpus/synthetic.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <utility>

#include "corpus/manifest.h"
#include "corpus/sarif.h"
#include "experiments.h"
#include "vdsim/tool.h"
#include "vdsim/vuln.h"

namespace vdbench::corpus {
namespace {

SyntheticCorpusSpec small_spec() {
  SyntheticCorpusSpec spec;
  spec.name = "small";
  spec.seed = 42;
  spec.ecosystems.push_back({"one", 200, 0.2, {1, 1, 1, 1, 1, 1, 1, 1}});
  spec.ecosystems.push_back({"two", 100, 0.05, {0, 0, 0, 0, 4, 3, 1, 0}});
  return spec;
}

TEST(SyntheticCorpusTest, ManifestGenerationIsByteDeterministic) {
  const std::string a = render_manifest(synthesize_manifest(small_spec()));
  const std::string b = render_manifest(synthesize_manifest(small_spec()));
  EXPECT_EQ(a, b);

  // A different seed produces a different ground truth.
  SyntheticCorpusSpec reseeded = small_spec();
  reseeded.seed = 43;
  EXPECT_NE(render_manifest(synthesize_manifest(reseeded)), a);
}

TEST(SyntheticCorpusTest, ReportGenerationIsByteDeterministicPerTool) {
  const SyntheticCorpusSpec spec = small_spec();
  const Manifest manifest = synthesize_manifest(spec);
  const vdsim::ToolProfile tool = vdsim::builtin_tools().front();
  const std::string a =
      render_sarif_report(synthesize_report(spec, manifest, tool));
  const std::string b =
      render_sarif_report(synthesize_report(spec, manifest, tool));
  EXPECT_EQ(a, b);

  // Different tools draw independent streams: reports differ.
  const vdsim::ToolProfile other = vdsim::builtin_tools().back();
  EXPECT_NE(render_sarif_report(synthesize_report(spec, manifest, other)), a);
}

TEST(SyntheticCorpusTest, RenderedManifestRoundTripsThroughTheReader) {
  const Manifest manifest = synthesize_manifest(small_spec());
  const std::string rendered = render_manifest(manifest);
  const Manifest reparsed = parse_manifest(rendered);
  EXPECT_EQ(reparsed.name, manifest.name);
  EXPECT_EQ(reparsed.rules, manifest.rules);
  ASSERT_EQ(reparsed.ecosystems.size(), manifest.ecosystems.size());
  for (std::size_t e = 0; e < manifest.ecosystems.size(); ++e) {
    EXPECT_EQ(reparsed.ecosystems[e].name, manifest.ecosystems[e].name);
    const auto& in = manifest.ecosystems[e].sites;
    const auto& out = reparsed.ecosystems[e].sites;
    ASSERT_EQ(out.size(), in.size());
    for (std::size_t s = 0; s < in.size(); ++s) {
      EXPECT_EQ(out[s].uri, in[s].uri);
      EXPECT_EQ(out[s].line, in[s].line);
      EXPECT_EQ(out[s].vulnerable, in[s].vulnerable);
      if (in[s].vulnerable) EXPECT_EQ(out[s].vuln_class, in[s].vuln_class);
      // The writer prints doubles with 12 significant digits, so the
      // reparsed difficulty agrees to that precision, not bit-for-bit.
      EXPECT_NEAR(out[s].difficulty, in[s].difficulty, 1e-9);
    }
  }
  // Canonical form: render(parse(render)) == render.
  EXPECT_EQ(render_manifest(reparsed), rendered);
}

TEST(SyntheticCorpusTest, RenderedReportRoundTripsThroughTheReader) {
  const SyntheticCorpusSpec spec = small_spec();
  const Manifest manifest = synthesize_manifest(spec);
  const SarifReport report =
      synthesize_report(spec, manifest, vdsim::builtin_tools().front());
  ASSERT_FALSE(report.findings.empty());
  const std::string rendered = render_sarif_report(report);
  const SarifReport reparsed = parse_sarif(rendered);
  EXPECT_EQ(reparsed.tool_name, report.tool_name);
  EXPECT_EQ(reparsed.tool_version, report.tool_version);
  EXPECT_EQ(reparsed.rules, report.rules);
  ASSERT_EQ(reparsed.findings.size(), report.findings.size());
  for (std::size_t f = 0; f < report.findings.size(); ++f) {
    const SarifFinding& in = report.findings[f];
    const SarifFinding& out = reparsed.findings[f];
    EXPECT_EQ(out.rule_id, in.rule_id);
    EXPECT_EQ(out.level, in.level);
    EXPECT_EQ(out.message, in.message);
    EXPECT_EQ(out.uri, in.uri);
    EXPECT_EQ(out.line, in.line);
    EXPECT_EQ(out.column, in.column);
    // Confidence survives to the writer's 12 significant digits.
    EXPECT_NEAR(out.confidence, in.confidence, 1e-9);
  }
  EXPECT_EQ(render_sarif_report(reparsed), rendered);
}

TEST(SyntheticCorpusTest, RulesTableCoversTheWholeTaxonomy) {
  const Manifest manifest = synthesize_manifest(small_spec());
  ASSERT_EQ(manifest.rules.size(), vdsim::kVulnClassCount);
  for (const vdsim::VulnClass c : vdsim::all_vuln_classes()) {
    const auto it = manifest.rules.find(synthetic_rule_id(c));
    ASSERT_NE(it, manifest.rules.end()) << synthetic_rule_id(c);
    EXPECT_EQ(it->second, vdsim::vuln_class_cwe(c));
    EXPECT_EQ(vuln_class_from_cwe(it->second), c);
  }
}

TEST(SyntheticCorpusTest, RealizedPrevalenceTracksTheSpec) {
  // 200 Bernoulli(0.2) draws: realized prevalence within 3 sigma.
  const Manifest manifest = synthesize_manifest(small_spec());
  const Ecosystem& eco = manifest.ecosystems[0];
  std::size_t vulnerable = 0;
  for (const TruthSite& site : eco.sites)
    if (site.vulnerable) ++vulnerable;
  const double realized =
      static_cast<double>(vulnerable) / static_cast<double>(eco.sites.size());
  EXPECT_NEAR(realized, 0.2, 3.0 * std::sqrt(0.2 * 0.8 / 200.0));

  // Difficulty values stay in the documented [0.1, 0.9] grid.
  for (const TruthSite& site : eco.sites) {
    EXPECT_GE(site.difficulty, 0.1 - 1e-12);
    EXPECT_LE(site.difficulty, 0.9 + 1e-12);
  }
}

TEST(SyntheticCorpusTest, E19CorporaHaveGloballyUniqueSites) {
  const std::vector<SyntheticCorpusSpec> specs = bench::e19_corpus_specs();
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].name, "webapps");
  EXPECT_EQ(specs[1].name, "systems");

  // (uri, line) never collides across ecosystems OR corpora, so external
  // and synthetic corpora can coexist in one scoring universe.
  std::set<std::pair<std::string, std::uint32_t>> seen;
  for (const SyntheticCorpusSpec& spec : specs) {
    ASSERT_EQ(spec.ecosystems.size(), 2u) << spec.name;
    const Manifest manifest = synthesize_manifest(spec);
    // The rendered manifest re-parses: duplicate sites would be rejected.
    EXPECT_EQ(parse_manifest(render_manifest(manifest)).site_count(),
              manifest.site_count());
    for (const Ecosystem& eco : manifest.ecosystems)
      for (const TruthSite& site : eco.sites)
        EXPECT_TRUE(seen.emplace(site.uri, site.line).second)
            << site.uri << ":" << site.line;
  }
}

TEST(SyntheticCorpusTest, SyntheticRuleIdsEmbedTheCwe) {
  EXPECT_EQ(synthetic_rule_id(vdsim::VulnClass::kSqlInjection),
            "synth-CWE-89");
  EXPECT_EQ(synthetic_rule_id(vdsim::VulnClass::kBufferOverflow),
            "synth-CWE-120");
}

}  // namespace
}  // namespace vdbench::corpus
