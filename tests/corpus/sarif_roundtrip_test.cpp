// Writer↔reader round trip: vdlint's --sarif writer (src/lint/output.h) and
// the corpus SARIF reader (src/corpus/sarif.h) are two sides of one format.
// Running the real analyzer over the checked-in fixtures, rendering SARIF,
// and parsing it back must reproduce every finding and rule field-for-field
// — and the corpus renderer closes the loop in the other direction.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "corpus/sarif.h"
#include "corpus/synthetic.h"
#include "lint/analyzer.h"
#include "lint/names.h"
#include "lint/output.h"
#include "lint/rules.h"

namespace vdbench::corpus {
namespace {

namespace fs = std::filesystem;

const fs::path kRepoRoot{VDBENCH_SOURCE_DIR};

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), {}};
}

// Analyze the lint fixtures exactly as the golden test does.
std::vector<lint::Finding> fixture_findings(const lint::RuleRegistry& registry) {
  const lint::NameTables tables = lint::load_name_tables(kRepoRoot);
  const std::vector<lint::SourceFile> files =
      lint::collect_files(kRepoRoot, {"tests/lint/fixtures"});
  std::vector<lint::Finding> findings;
  for (const lint::SourceFile& file : files) {
    std::vector<lint::Finding> f =
        lint::analyze_file(file.path, file.display, tables, registry);
    findings.insert(findings.end(), f.begin(), f.end());
  }
  return findings;
}

TEST(SarifRoundTripTest, VdlintWriterOutputParsesFieldForField) {
  const lint::RuleRegistry registry = lint::RuleRegistry::default_rules();
  const std::vector<lint::Finding> findings = fixture_findings(registry);
  ASSERT_FALSE(findings.empty());

  const SarifReport report =
      parse_sarif(lint::render_sarif(findings, registry));
  EXPECT_EQ(report.tool_name, "vdlint");
  EXPECT_EQ(report.tool_version, "1.0.0");

  // Rule inventory: id, summary and severity survive the trip.
  ASSERT_EQ(report.rules.size(), registry.rules().size());
  for (std::size_t i = 0; i < report.rules.size(); ++i) {
    const lint::LintRule& rule = registry.rules()[i];
    EXPECT_EQ(report.rules[i].id, rule.id);
    EXPECT_EQ(report.rules[i].short_description, rule.summary);
    EXPECT_EQ(report.rules[i].level, lint::severity_name(rule.severity));
  }

  // Findings: every field the writer emits comes back identically.
  ASSERT_EQ(report.findings.size(), findings.size());
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const lint::Finding& written = findings[i];
    const SarifFinding& parsed = report.findings[i];
    EXPECT_EQ(parsed.rule_id, written.rule) << i;
    EXPECT_EQ(parsed.level, lint::severity_name(written.severity)) << i;
    EXPECT_EQ(parsed.message, written.message) << i;
    EXPECT_EQ(parsed.uri, written.file) << i;
    EXPECT_EQ(parsed.line, written.line) << i;
    EXPECT_EQ(parsed.column, written.column) << i;
    EXPECT_EQ(parsed.confidence, -1.0) << i;  // vdlint reports none
  }
}

TEST(SarifRoundTripTest, GoldenFileAndFreshRenderParseIdentically) {
  // The checked-in golden (with its trailing newline) and a fresh render
  // must produce the same parsed report — the file on disk carries no
  // information the writer does not.
  const lint::RuleRegistry registry = lint::RuleRegistry::default_rules();
  const SarifReport golden = parse_sarif(
      slurp(kRepoRoot / "tests" / "lint" / "expected_fixtures.sarif"));
  const SarifReport fresh = parse_sarif(
      lint::render_sarif(fixture_findings(registry), registry));
  EXPECT_EQ(golden.tool_name, fresh.tool_name);
  EXPECT_EQ(golden.rules, fresh.rules);
  EXPECT_EQ(golden.findings, fresh.findings);
}

TEST(SarifRoundTripTest, CorpusRendererClosesTheLoop) {
  // parse → render → parse is the identity on the corpus renderer too,
  // including rules without descriptions and findings without columns.
  const lint::RuleRegistry registry = lint::RuleRegistry::default_rules();
  const SarifReport first = parse_sarif(
      lint::render_sarif(fixture_findings(registry), registry));
  const std::string rendered = render_sarif_report(first);
  const SarifReport second = parse_sarif(rendered);
  EXPECT_EQ(second.tool_name, first.tool_name);
  EXPECT_EQ(second.tool_version, first.tool_version);
  EXPECT_EQ(second.rules, first.rules);
  EXPECT_EQ(second.findings, first.findings);
  // And the render itself is canonical: render(parse(render(x))) == render(x).
  EXPECT_EQ(render_sarif_report(second), rendered);
}

}  // namespace
}  // namespace vdbench::corpus
