// Every-truncation-point-is-loud sweep: for a representative manifest and
// SARIF report, EVERY strict prefix must be rejected with a typed,
// offset-bearing CorpusError — the readers never degrade to a silent short
// parse. A companion bit-flip sweep checks single-bit damage is either
// rejected or visibly changes the parse (JSON extensibility makes a small
// number of flips in ignorable member names legitimately silent; the sweep
// bounds that fraction).
#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "corpus/error.h"
#include "corpus/manifest.h"
#include "corpus/sarif.h"
#include "corpus/synthetic.h"
#include "vdsim/tool.h"

namespace vdbench::corpus {
namespace {

// A small but structurally complete corpus: two ecosystems, vulnerable and
// clean sites, findings with and without confidence.
SyntheticCorpusSpec sweep_spec() {
  SyntheticCorpusSpec spec;
  spec.name = "sweep";
  spec.seed = 17;
  spec.ecosystems.push_back(
      {"alpha", 12, 0.5, {2, 1, 1, 1, 1, 1, 1, 1}});
  spec.ecosystems.push_back(
      {"beta", 12, 0.25, {0, 0, 1, 1, 2, 2, 1, 1}});
  return spec;
}

std::string sweep_manifest_doc() {
  return render_manifest(synthesize_manifest(sweep_spec()));
}

std::string sweep_sarif_doc() {
  const SyntheticCorpusSpec spec = sweep_spec();
  const Manifest manifest = synthesize_manifest(spec);
  return render_sarif_report(
      synthesize_report(spec, manifest, vdsim::builtin_tools().front()));
}

template <typename ParseFn>
void expect_every_prefix_loud(const std::string& doc, ParseFn parse) {
  ASSERT_FALSE(doc.empty());
  for (std::size_t len = 0; len < doc.size(); ++len) {
    const std::string prefix = doc.substr(0, len);
    try {
      parse(prefix);
      FAIL() << "prefix of length " << len << " of " << doc.size()
             << " bytes parsed silently";
    } catch (const CorpusError& e) {
      // The offset always points inside (or just past) the prefix.
      EXPECT_LE(e.offset, prefix.size()) << "prefix length " << len;
    }
  }
}

// Flip each byte's bit (cycling through the 8 bit positions) and demand the
// damage is loud: a CorpusError, or a parse whose canonical re-render
// differs from the original. Returns the number of silent flips.
template <typename ParseRender>
std::size_t flip_sweep(const std::string& doc, ParseRender parse_render) {
  std::size_t silent = 0;
  for (std::size_t i = 0; i < doc.size(); ++i) {
    std::string flipped = doc;
    flipped[i] = static_cast<char>(
        static_cast<unsigned char>(flipped[i]) ^ (1u << (i % 8)));
    try {
      if (parse_render(flipped) == doc) ++silent;
    } catch (const CorpusError&) {
      // loud: rejected outright
    }
  }
  return silent;
}

TEST(CorpusSweepTest, EveryManifestTruncationPointIsLoud) {
  expect_every_prefix_loud(sweep_manifest_doc(), [](const std::string& text) {
    return parse_manifest(text);
  });
}

TEST(CorpusSweepTest, EverySarifTruncationPointIsLoud) {
  expect_every_prefix_loud(sweep_sarif_doc(), [](const std::string& text) {
    return parse_sarif(text);
  });
}

TEST(CorpusSweepTest, ManifestBitFlipsAreRejectedOrChangeTheParse) {
  const std::string doc = sweep_manifest_doc();
  const std::size_t silent = flip_sweep(doc, [](const std::string& text) {
    return render_manifest(parse_manifest(text));
  });
  // The only legitimately silent flips land in an optional member's name
  // (the member becomes an ignored unknown and its default coincides with
  // the original value). That is a tiny sliver of the document.
  EXPECT_LE(silent * 20, doc.size()) << silent << " silent flips of "
                                     << doc.size();
}

TEST(CorpusSweepTest, SarifBitFlipsAreRejectedOrChangeTheParse) {
  const std::string doc = sweep_sarif_doc();
  const std::size_t silent = flip_sweep(doc, [](const std::string& text) {
    return render_sarif_report(parse_sarif(text));
  });
  EXPECT_LE(silent * 20, doc.size()) << silent << " silent flips of "
                                     << doc.size();
}

TEST(CorpusSweepTest, TornTailReportsAnOffsetInsideTheDocument) {
  // The specific shape CI's torn-corpus leg exercises: the tail half gone.
  const std::string doc = sweep_manifest_doc();
  const std::string torn = doc.substr(0, doc.size() / 2);
  try {
    (void)parse_manifest(torn);
    FAIL() << "torn manifest accepted";
  } catch (const CorpusError& e) {
    EXPECT_GT(e.offset, 0u);
    EXPECT_LE(e.offset, torn.size());
    EXPECT_NE(std::string(e.what()).find("corrupt"), std::string::npos);
  }
}

}  // namespace
}  // namespace vdbench::corpus
