// Matcher tests: every clause of the ambiguity policy documented in
// corpus/matcher.h is pinned here — site identity ignores columns, records
// come out in manifest order, confidence picks duplicate winners, strays
// are counted but never scored, and unmapped rules claim kUnknownClass.
#include "corpus/matcher.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/confusion.h"
#include "corpus/manifest.h"
#include "corpus/sarif.h"
#include "stream/record.h"
#include "vdsim/vuln.h"

namespace vdbench::corpus {
namespace {

using vdsim::VulnClass;

constexpr std::uint8_t kSql =
    static_cast<std::uint8_t>(vdsim::vuln_class_index(VulnClass::kSqlInjection));
constexpr std::uint8_t kXss =
    static_cast<std::uint8_t>(vdsim::vuln_class_index(VulnClass::kXss));

TruthSite vuln_site(std::string uri, std::uint32_t line, VulnClass c) {
  TruthSite site;
  site.uri = std::move(uri);
  site.line = line;
  site.vulnerable = true;
  site.vuln_class = c;
  return site;
}

TruthSite clean_site(std::string uri, std::uint32_t line) {
  TruthSite site;
  site.uri = std::move(uri);
  site.line = line;
  return site;
}

SarifFinding finding(std::string rule, std::string uri, std::uint32_t line,
                     double confidence = -1.0, std::uint32_t column = 0) {
  SarifFinding f;
  f.rule_id = std::move(rule);
  f.level = "warning";
  f.uri = std::move(uri);
  f.line = line;
  f.column = column;
  f.confidence = confidence;
  return f;
}

// Two ecosystems, four sites, rules for SQL injection and XSS.
Manifest two_ecosystem_manifest() {
  Manifest m;
  m.name = "toy";
  m.rules["tool-sql"] = "CWE-89";
  m.rules["tool-xss"] = "CWE-79";
  m.rules["tool-odd"] = "CWE-9999";  // legal in the table, outside taxonomy
  m.ecosystems.push_back(
      {"web", {vuln_site("web.c", 10, VulnClass::kSqlInjection),
               clean_site("web.c", 20)}});
  m.ecosystems.push_back(
      {"sys", {vuln_site("sys.c", 10, VulnClass::kXss),
               clean_site("sys.c", 20)}});
  return m;
}

core::ConfusionMatrix score(const MatchResult& match) {
  core::ConfusionMatrix cm;
  for (const stream::SiteRecord& record : match.records)
    stream::accumulate(record, cm);
  return cm;
}

TEST(MatcherTest, MatchedFindingClaimsTheMappedClass) {
  const Manifest m = two_ecosystem_manifest();
  SarifReport report;
  report.findings = {finding("tool-sql", "web.c", 10, 0.9)};
  const MatchResult match = match_findings(m, report);

  ASSERT_EQ(match.records.size(), 4u);
  EXPECT_EQ(match.records[0].truth, kSql);
  EXPECT_EQ(match.records[0].claimed, kSql);
  EXPECT_EQ(match.stats, (MatchStats{4, 1, 0, 0, 0}));

  const core::ConfusionMatrix cm = score(match);
  EXPECT_EQ(cm.tp, 1u);  // the detection
  EXPECT_EQ(cm.fn, 1u);  // the missed XSS site
  EXPECT_EQ(cm.tn, 2u);  // both clean sites silent
  EXPECT_EQ(cm.fp, 0u);
}

TEST(MatcherTest, ColumnsAreIgnoredForSiteIdentity) {
  const Manifest m = two_ecosystem_manifest();
  SarifReport report;
  report.findings = {finding("tool-sql", "web.c", 10, 0.9, /*column=*/77)};
  const MatchResult match = match_findings(m, report);
  EXPECT_EQ(match.stats.matched, 1u);
  EXPECT_EQ(match.stats.stray, 0u);
  EXPECT_EQ(match.records[0].claimed, kSql);
}

TEST(MatcherTest, RecordsComeOutInManifestOrderRegardlessOfFindingOrder) {
  const Manifest m = two_ecosystem_manifest();
  SarifReport report;
  // Findings arrive reversed relative to the manifest enumeration.
  report.findings = {finding("tool-xss", "sys.c", 10, 0.5),
                     finding("tool-sql", "web.c", 10, 0.5)};
  const MatchResult match = match_findings(m, report);
  ASSERT_EQ(match.records.size(), 4u);
  // (service, site) walk the manifest: web[0], web[1], sys[0], sys[1].
  EXPECT_EQ(match.records[0].service, 0u);
  EXPECT_EQ(match.records[0].site, 0u);
  EXPECT_EQ(match.records[1].service, 0u);
  EXPECT_EQ(match.records[1].site, 1u);
  EXPECT_EQ(match.records[2].service, 1u);
  EXPECT_EQ(match.records[2].site, 0u);
  EXPECT_EQ(match.records[3].service, 1u);
  EXPECT_EQ(match.records[3].site, 1u);
  EXPECT_EQ(match.records[0].claimed, kSql);
  EXPECT_EQ(match.records[2].claimed, kXss);
}

TEST(MatcherTest, StrayFindingsAreCountedButNeverScored) {
  const Manifest m = two_ecosystem_manifest();
  SarifReport report;
  report.findings = {finding("tool-sql", "nowhere.c", 1, 0.9),
                     finding("tool-sql", "web.c", 11, 0.9),  // off-by-one line
                     finding("tool-sql", "web.c", 10, 0.9)};
  const MatchResult match = match_findings(m, report);
  EXPECT_EQ(match.stats.stray, 2u);
  EXPECT_EQ(match.stats.matched, 1u);
  // Strays contribute nothing to the confusion counts: only the four
  // enumerated sites are scored, one cell each.
  const core::ConfusionMatrix cm = score(match);
  EXPECT_EQ(cm.tp, 1u);
  EXPECT_EQ(cm.fp, 0u);
  EXPECT_EQ(cm.tn, 2u);
  EXPECT_EQ(cm.fn, 1u);
}

TEST(MatcherTest, HighestConfidenceWinsDuplicateClaims) {
  const Manifest m = two_ecosystem_manifest();
  SarifReport report;
  report.findings = {finding("tool-xss", "web.c", 10, 0.3),
                     finding("tool-sql", "web.c", 10, 0.8),
                     finding("tool-xss", "web.c", 10, 0.5)};
  const MatchResult match = match_findings(m, report);
  EXPECT_EQ(match.stats.matched, 1u);
  EXPECT_EQ(match.stats.duplicates, 2u);
  EXPECT_EQ(match.records[0].claimed, kSql);  // 0.8 beat 0.3 and 0.5
}

TEST(MatcherTest, AbsentConfidenceRanksBelowAnyDeclaredValue) {
  const Manifest m = two_ecosystem_manifest();
  SarifReport report;
  report.findings = {finding("tool-xss", "web.c", 10 /* no confidence */),
                     finding("tool-sql", "web.c", 10, 0.01)};
  const MatchResult match = match_findings(m, report);
  EXPECT_EQ(match.records[0].claimed, kSql);
  EXPECT_EQ(match.stats.duplicates, 1u);
}

TEST(MatcherTest, ConfidenceTiesGoToTheEarliestFinding) {
  const Manifest m = two_ecosystem_manifest();
  SarifReport report;
  report.findings = {finding("tool-sql", "web.c", 10, 0.5),
                     finding("tool-xss", "web.c", 10, 0.5)};
  const MatchResult match = match_findings(m, report);
  EXPECT_EQ(match.records[0].claimed, kSql);  // document order breaks the tie

  // Two findings both without confidence tie at -1.0: earliest wins.
  report.findings = {finding("tool-xss", "web.c", 10),
                     finding("tool-sql", "web.c", 10)};
  EXPECT_EQ(match_findings(m, report).records[0].claimed, kXss);
}

TEST(MatcherTest, UnmappedRulesClaimUnknownClassAndScoreAsFalsePositives) {
  const Manifest m = two_ecosystem_manifest();
  SarifReport report;
  // One unmapped ruleId on a vulnerable site, one rule mapping to an
  // out-of-taxonomy CWE on a clean site.
  report.findings = {finding("never-heard-of-it", "web.c", 10, 0.9),
                     finding("tool-odd", "web.c", 20, 0.9)};
  const MatchResult match = match_findings(m, report);
  EXPECT_EQ(match.stats.matched, 2u);
  EXPECT_EQ(match.stats.unknown_rule, 2u);
  EXPECT_EQ(match.records[0].claimed, kUnknownClass);
  EXPECT_EQ(match.records[1].claimed, kUnknownClass);

  // Clause 6: an unclassifiable claim is an alarm, not a detection. On the
  // vulnerable site it scores FP + FN; on the clean site FP.
  const core::ConfusionMatrix cm = score(match);
  EXPECT_EQ(cm.tp, 0u);
  EXPECT_EQ(cm.fp, 2u);
  EXPECT_EQ(cm.fn, 2u);  // web.c:10 missed + sys.c:10 silent
  EXPECT_EQ(cm.tn, 1u);  // sys.c:20
}

TEST(MatcherTest, SentinelsAreDistinct) {
  // The unknown-class sentinel must never collide with "no finding" or a
  // real class index, or scoring would silently change meaning.
  EXPECT_NE(kUnknownClass, stream::kNoFinding);
  for (const VulnClass c : vdsim::all_vuln_classes())
    EXPECT_NE(kUnknownClass, static_cast<std::uint8_t>(
                                 vdsim::vuln_class_index(c)));
}

TEST(MatcherTest, EmptyReportYieldsAllSilentRecords) {
  const Manifest m = two_ecosystem_manifest();
  const MatchResult match = match_findings(m, SarifReport{});
  EXPECT_EQ(match.stats, (MatchStats{4, 0, 0, 0, 0}));
  for (const stream::SiteRecord& record : match.records)
    EXPECT_EQ(record.claimed, stream::kNoFinding);
  const core::ConfusionMatrix cm = score(match);
  EXPECT_EQ(cm.fn, 2u);
  EXPECT_EQ(cm.tn, 2u);
}

TEST(MatcherTest, DeterministicAcrossRepeatedCalls) {
  const Manifest m = two_ecosystem_manifest();
  SarifReport report;
  report.findings = {finding("tool-sql", "web.c", 10, 0.8),
                     finding("tool-xss", "sys.c", 10, 0.7),
                     finding("tool-sql", "stray.c", 3, 0.2)};
  const MatchResult first = match_findings(m, report);
  const MatchResult second = match_findings(m, report);
  EXPECT_EQ(first.records, second.records);
  EXPECT_EQ(first.stats, second.stats);
}

}  // namespace
}  // namespace vdbench::corpus
