// End-to-end fixture corpus: the checked-in vdlint golden SARIF scored
// against tests/corpus/lint_fixtures_truth.json — a real report file and a
// real manifest file flowing through intake, matching and both evaluation
// paths, with the exact expected confusion counts pinned.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "core/confusion.h"
#include "corpus/intake.h"
#include "corpus/matcher.h"

namespace vdbench::corpus {
namespace {

namespace fs = std::filesystem;

const fs::path kRepoRoot{VDBENCH_SOURCE_DIR};

TEST(LintCorpusTest, GoldenReportScoresAgainstTheTruthFixture) {
  const Manifest truth = read_manifest_file(
      (kRepoRoot / "tests" / "corpus" / "lint_fixtures_truth.json").string());
  const SarifReport report = read_sarif_file(
      (kRepoRoot / "tests" / "lint" / "expected_fixtures.sarif").string());

  const MatchResult match = match_findings(truth, report);
  // All 14 findings land on enumerated sites; 10 carry rule ids the
  // manifest cannot map into the taxonomy (9 unmapped + vdl-fault-point's
  // out-of-taxonomy CWE-710) and claim kUnknownClass.
  EXPECT_EQ(match.stats, (MatchStats{17, 14, 0, 0, 10}));

  const core::ConfusionMatrix direct = evaluate_direct(match.records);
  // 3 TP: vdl-rand, vdl-random-device (CWE-327) and vdl-include-path
  //       (CWE-22) hit vulnerable sites with matching truth.
  // 11 FP: 9 unknown-class claims on clean sites, plus the wrong-class
  //       claim on env_prefix_fire (truth CWE-89, claim CWE-78) and the
  //       unknown-class claim on fault_point_fire.
  // 3 FN: those two mis-claimed vulnerable sites stay missed, plus the
  //       silent vulnerable rand_clean.cpp site.
  // 2 TN: the clean sites no finding touched.
  EXPECT_EQ(direct.tp, 3u);
  EXPECT_EQ(direct.fp, 11u);
  EXPECT_EQ(direct.fn, 3u);
  EXPECT_EQ(direct.tn, 2u);

  // The streamed path is a pure transport over the same records.
  EXPECT_TRUE(direct == evaluate_streamed(match.records, 4));
}

}  // namespace
}  // namespace vdbench::corpus
