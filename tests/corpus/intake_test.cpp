// Intake tests: file loading through the corpus.read fault point (every
// action either surfaces as a typed CorpusError / InjectedFault or leaves
// the reader to reject the mangled bytes — never a silent short parse), and
// the streamed evaluation path producing the exact matrix the direct fold
// does for any chunking.
#include "corpus/intake.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "corpus/error.h"
#include "corpus/matcher.h"
#include "corpus/synthetic.h"
#include "fault/injector.h"
#include "vdsim/tool.h"

namespace vdbench::corpus {
namespace {

namespace fs = std::filesystem;

// A compact manifest where every byte is load-bearing: all sites declare
// difficulty 0.25, so even a bit flip inside an optional member's name
// changes the parse (the default 0.5 would show).
constexpr const char* kManifestDoc =
    R"({"schema":1,"name":"t","rules":{"r-sql":"CWE-89"},)"
    R"("ecosystems":[{"name":"e","sites":[)"
    R"({"uri":"a.c","line":1,"cwe":"CWE-89","vulnerable":true,)"
    R"("difficulty":0.25},)"
    R"({"uri":"a.c","line":2,"vulnerable":false,"difficulty":0.25}]}]})";

constexpr const char* kSarifDoc =
    R"({"version":"2.1.0","runs":[{"tool":{"driver":{"name":"t"}},)"
    R"("results":[{"ruleId":"r-sql","locations":[{"physicalLocation":)"
    R"({"artifactLocation":{"uri":"a.c"},"region":{"startLine":1}}}],)"
    R"("properties":{"confidence":0.75}}]}]})";

class IntakeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("vdcorpus_intake_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    manifest_path_ = (dir_ / "truth.json").string();
    sarif_path_ = (dir_ / "report.sarif").string();
    std::ofstream(manifest_path_, std::ios::binary) << kManifestDoc;
    std::ofstream(sarif_path_, std::ios::binary) << kSarifDoc;
  }

  void TearDown() override {
    fault::Injector::global().disarm();
    fs::remove_all(dir_);
  }

  fs::path dir_;
  std::string manifest_path_;
  std::string sarif_path_;
};

TEST_F(IntakeTest, ReadsBothFileKindsOffDisk) {
  const Manifest manifest = read_manifest_file(manifest_path_);
  EXPECT_EQ(manifest.site_count(), 2u);
  const SarifReport report = read_sarif_file(sarif_path_);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule_id, "r-sql");
}

TEST_F(IntakeTest, MissingFilesFailWithATypedError) {
  try {
    (void)read_sarif_file((dir_ / "absent.sarif").string());
    FAIL() << "missing file accepted";
  } catch (const CorpusError& e) {
    EXPECT_EQ(e.offset, 0u);
    EXPECT_NE(std::string(e.what()).find("cannot open"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW((void)read_manifest_file((dir_ / "absent.json").string()),
               CorpusError);
}

TEST_F(IntakeTest, InjectedIoErrorSurfacesAsCorpusError) {
  fault::Injector::global().arm("corpus.read=io_error@sarif:1");
  try {
    (void)read_sarif_file(sarif_path_);
    FAIL() << "injected io_error did not surface";
  } catch (const CorpusError& e) {
    EXPECT_EQ(e.offset, 0u);
    EXPECT_NE(std::string(e.what()).find("injected i/o error"),
              std::string::npos)
        << e.what();
  }
  // The key filter scopes the schedule: manifest reads are unaffected.
  EXPECT_EQ(read_manifest_file(manifest_path_).site_count(), 2u);
}

TEST_F(IntakeTest, InjectedThrowAndTimeoutRaiseInjectedFault) {
  fault::Injector::global().arm("corpus.read=throw@manifest:1");
  EXPECT_THROW((void)read_manifest_file(manifest_path_),
               fault::InjectedFault);
  fault::Injector::global().arm("corpus.read=timeout@sarif:1");
  try {
    (void)read_sarif_file(sarif_path_);
    FAIL() << "injected timeout did not surface";
  } catch (const fault::InjectedFault& e) {
    EXPECT_NE(std::string(e.what()).find("deadline"), std::string::npos)
        << e.what();
  }
}

TEST_F(IntakeTest, InjectedCorruptionIsNeverSilent) {
  // The flipped bit lands wherever the schedule's salt says; the reader
  // must either reject the document or visibly parse something different.
  const Manifest clean = read_manifest_file(manifest_path_);
  fault::Injector::global().arm("corpus.read=corrupt@manifest:1");
  try {
    const Manifest mangled = read_manifest_file(manifest_path_);
    EXPECT_NE(render_manifest(mangled), render_manifest(clean))
        << "bit flip parsed back to the clean manifest";
  } catch (const CorpusError&) {
    // rejected outright: equally loud
  }
}

TEST_F(IntakeTest, InjectedTruncationIsRejectedWithAnOffset) {
  fault::Injector::global().arm("corpus.read=truncate@sarif:1");
  try {
    (void)read_sarif_file(sarif_path_);
    FAIL() << "torn SARIF accepted";
  } catch (const CorpusError& e) {
    EXPECT_GT(e.offset, 0u);
    EXPECT_LE(e.offset, std::string(kSarifDoc).size() / 2 + 1);
    EXPECT_NE(std::string(e.what()).find("corrupt"), std::string::npos)
        << e.what();
  }
  fault::Injector::global().arm("corpus.read=truncate@manifest:1");
  EXPECT_THROW((void)read_manifest_file(manifest_path_), CorpusError);
}

TEST_F(IntakeTest, FileIntakeFeedsTheMatcherEndToEnd) {
  const Manifest manifest = read_manifest_file(manifest_path_);
  const SarifReport report = read_sarif_file(sarif_path_);
  const MatchResult match = match_findings(manifest, report);
  const core::ConfusionMatrix cm = evaluate_direct(match.records);
  EXPECT_EQ(cm.tp, 1u);  // a.c:1 detected as CWE-89
  EXPECT_EQ(cm.tn, 1u);  // a.c:2 silent
  EXPECT_EQ(cm.fp, 0u);
  EXPECT_EQ(cm.fn, 0u);
}

// --- streamed evaluation --------------------------------------------------

std::vector<stream::SiteRecord> synthetic_records() {
  SyntheticCorpusSpec spec;
  spec.name = "streamed";
  spec.seed = 99;
  spec.ecosystems.push_back({"one", 300, 0.3, {1, 1, 1, 1, 1, 1, 1, 1}});
  spec.ecosystems.push_back({"two", 157, 0.05, {0, 1, 0, 1, 2, 2, 1, 1}});
  const Manifest manifest = synthesize_manifest(spec);
  const SarifReport report =
      synthesize_report(spec, manifest, vdsim::builtin_tools().front());
  return match_findings(manifest, report).records;
}

TEST(StreamedIntakeTest, MatchesDirectFoldForAnyChunking) {
  const std::vector<stream::SiteRecord> records = synthetic_records();
  const core::ConfusionMatrix direct = evaluate_direct(records);
  EXPECT_EQ(direct.total(), records.size());
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  std::size_t{64}, std::size_t{512},
                                  records.size() + 13}) {
    const core::ConfusionMatrix streamed = evaluate_streamed(records, chunk);
    EXPECT_TRUE(direct == streamed)
        << "chunk_sites=" << chunk << ": " << streamed.to_string() << " vs "
        << direct.to_string();
  }
  // Queue capacity affects scheduling only.
  EXPECT_TRUE(direct == evaluate_streamed(records, 32, /*queue_capacity=*/1));
}

TEST(StreamedIntakeTest, EmptyRecordSetFoldsToAnEmptyMatrix) {
  const std::vector<stream::SiteRecord> none;
  EXPECT_EQ(evaluate_direct(none).total(), 0u);
  EXPECT_EQ(evaluate_streamed(none, 8).total(), 0u);
}

TEST(StreamedIntakeTest, ZeroChunkSizeIsAUsageError) {
  const std::vector<stream::SiteRecord> records = synthetic_records();
  EXPECT_THROW((void)evaluate_streamed(records, 0), std::invalid_argument);
}

}  // namespace
}  // namespace vdbench::corpus
