#include "cache/result_cache.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "cache/hash.h"
#include "cli/experiment.h"
#include "fault/injector.h"

namespace vdbench::cache {
namespace {

namespace fs = std::filesystem;

class ResultCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("vdcache_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  ResultCache make_cache(std::uint64_t max_bytes = 1ULL << 20) {
    return ResultCache({dir_, max_bytes});
  }

  fs::path entry_file(const CacheKey& key) const {
    return dir_ / (key.hex() + ".vdc");
  }

  fs::path dir_;
};

CacheKey sample_key() { return {"e1", "cfg{x=1}", 42, 1}; }

TEST(CacheKeyTest, DigestMatchesGoldenValue) {
  // Computed independently (reference FNV-1a implementation); pins the key
  // schema so cached entries stay addressable across processes and builds.
  EXPECT_EQ(sample_key().digest(), 0xeb607be78fdd1ca4ULL);
  EXPECT_EQ(sample_key().hex(), "eb607be78fdd1ca4");
}

TEST(CacheKeyTest, EveryFieldChangesTheDigest) {
  const CacheKey base = sample_key();
  CacheKey k = base;
  k.experiment_id = "e2";
  EXPECT_NE(k.digest(), base.digest());
  k = base;
  k.config = "cfg{x=2}";
  EXPECT_NE(k.digest(), base.digest());
  k = base;
  k.seed = 43;
  EXPECT_NE(k.digest(), base.digest());
  k = base;
  k.schema_version = 2;
  EXPECT_NE(k.digest(), base.digest());
}

TEST_F(ResultCacheTest, EngineSchemaBumpInvalidatesOldEntries) {
  // E17 landed with a schema bump; entries addressed under the previous
  // engine schema must be cache misses for the current engine.
  static_assert(cli::kEngineSchemaVersion >= 2,
                "schema must have been bumped when E17 landed");
  ResultCache cache = make_cache();
  CacheKey stale{"e17", "realtool{services=120}", 42,
                 cli::kEngineSchemaVersion - 1};
  ASSERT_TRUE(cache.store(stale, "old-schema payload", 1));

  CacheKey current = stale;
  current.schema_version = cli::kEngineSchemaVersion;
  EXPECT_FALSE(cache.fetch(current, 2).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
  // The stale entry itself is still addressable under its own version.
  EXPECT_TRUE(cache.fetch(stale, 3).has_value());
}

TEST(CacheKeyTest, LengthPrefixPreventsConcatenationCollisions) {
  // Same concatenated bytes, different field split.
  const CacheKey a{"e1x", "y", 0, 1};
  const CacheKey b{"e1", "xy", 0, 1};
  EXPECT_NE(a.digest(), b.digest());
}

TEST(HashTest, Fnv1a64MatchesReferenceVector) {
  EXPECT_EQ(fnv1a64("hello"), 0xa430d84680aabd0bULL);
  std::uint64_t v = 0;
  EXPECT_TRUE(from_hex64("a430d84680aabd0b", v));
  EXPECT_EQ(v, 0xa430d84680aabd0bULL);
  EXPECT_EQ(to_hex64(v), "a430d84680aabd0b");
  EXPECT_FALSE(from_hex64("not-hex", v));
  EXPECT_FALSE(from_hex64("abcd", v));  // wrong width
}

TEST_F(ResultCacheTest, MissThenStoreThenHit) {
  ResultCache cache = make_cache();
  const CacheKey key = sample_key();
  EXPECT_FALSE(cache.fetch(key, 1).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);

  ASSERT_TRUE(cache.store(key, "payload-bytes", 2));
  const auto hit = cache.fetch(key, 3);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "payload-bytes");
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().stores, 1u);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.5);
}

TEST_F(ResultCacheTest, StoreOverwritesPreviousPayload) {
  ResultCache cache = make_cache();
  const CacheKey key = sample_key();
  ASSERT_TRUE(cache.store(key, "old", 1));
  ASSERT_TRUE(cache.store(key, "new-longer-payload", 2));
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.total_bytes(), 18u);
  EXPECT_EQ(cache.fetch(key, 3).value(), "new-longer-payload");
}

TEST_F(ResultCacheTest, EntriesSurviveAcrossInstances) {
  const CacheKey key = sample_key();
  {
    ResultCache cache = make_cache();
    ASSERT_TRUE(cache.store(key, "persisted", 1));
  }
  ResultCache reopened = make_cache();
  EXPECT_EQ(reopened.entry_count(), 1u);
  EXPECT_EQ(reopened.fetch(key, 2).value(), "persisted");
}

TEST_F(ResultCacheTest, TruncatedEntryIsCorruptionNotACrash) {
  ResultCache cache = make_cache();
  const CacheKey key = sample_key();
  ASSERT_TRUE(cache.store(key, "some payload", 1));
  // Truncate the file mid-payload.
  std::ofstream(entry_file(key), std::ios::binary | std::ios::trunc)
      << "VDCACHE 1 ";
  EXPECT_FALSE(cache.fetch(key, 2).has_value());
  EXPECT_EQ(cache.stats().corrupt_entries, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  // The bad file was deleted; a later store works again.
  EXPECT_FALSE(fs::exists(entry_file(key)));
  ASSERT_TRUE(cache.store(key, "fresh", 3));
  EXPECT_EQ(cache.fetch(key, 4).value(), "fresh");
}

TEST_F(ResultCacheTest, BitFlipFailsTheChecksum) {
  ResultCache cache = make_cache();
  const CacheKey key = sample_key();
  ASSERT_TRUE(cache.store(key, "checksummed payload", 1));
  // Flip one payload byte in place.
  std::string raw;
  {
    std::ifstream in(entry_file(key), std::ios::binary);
    raw.assign(std::istreambuf_iterator<char>(in), {});
  }
  raw.back() ^= 0x01;
  std::ofstream(entry_file(key), std::ios::binary | std::ios::trunc) << raw;
  EXPECT_FALSE(cache.fetch(key, 2).has_value());
  EXPECT_EQ(cache.stats().corrupt_entries, 1u);
}

TEST_F(ResultCacheTest, ForeignFileUnderTheEntryNameIsAMiss) {
  ResultCache cache = make_cache();
  const CacheKey key = sample_key();
  std::ofstream(entry_file(key), std::ios::binary) << "not a cache entry";
  EXPECT_FALSE(cache.fetch(key, 1).has_value());
  EXPECT_EQ(cache.stats().corrupt_entries, 1u);
}

TEST_F(ResultCacheTest, EntryStoredUnderWrongNameIsRejected) {
  ResultCache cache = make_cache();
  const CacheKey key = sample_key();
  CacheKey other = key;
  other.seed = 99;
  ASSERT_TRUE(cache.store(other, "other payload", 1));
  // Copy other's (valid) entry file over key's name: header digest will not
  // match the requested key.
  fs::copy_file(entry_file(other), entry_file(key));
  EXPECT_FALSE(cache.fetch(key, 2).has_value());
  EXPECT_EQ(cache.stats().corrupt_entries, 1u);
  // The impostor is gone, the real entry is untouched.
  EXPECT_FALSE(fs::exists(entry_file(key)));
  EXPECT_EQ(cache.fetch(other, 3).value(), "other payload");
}

TEST_F(ResultCacheTest, LruEvictionRespectsSizeCapAndRecency) {
  ResultCache cache = make_cache(/*max_bytes=*/30);
  const CacheKey k1{"e1", "", 0, 1};
  const CacheKey k2{"e2", "", 0, 1};
  const CacheKey k3{"e3", "", 0, 1};
  ASSERT_TRUE(cache.store(k1, std::string(10, 'a'), 1));
  ASSERT_TRUE(cache.store(k2, std::string(10, 'b'), 2));
  // Touch k1 so k2 is now the least recently used.
  EXPECT_TRUE(cache.fetch(k1, 3).has_value());
  // 10 more bytes exceeds the 30-byte cap => k2 is evicted.
  ASSERT_TRUE(cache.store(k3, std::string(15, 'c'), 4));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.fetch(k1, 5).has_value());
  EXPECT_FALSE(cache.fetch(k2, 6).has_value());
  EXPECT_TRUE(cache.fetch(k3, 7).has_value());
  EXPECT_LE(cache.total_bytes(), 30u);
}

TEST_F(ResultCacheTest, OversizedSinglePayloadStillCaches) {
  ResultCache cache = make_cache(/*max_bytes=*/4);
  const CacheKey key = sample_key();
  ASSERT_TRUE(cache.store(key, "way past the cap", 1));
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_TRUE(cache.fetch(key, 2).has_value());
}

TEST_F(ResultCacheTest, RemoveDropsTheEntry) {
  ResultCache cache = make_cache();
  const CacheKey key = sample_key();
  ASSERT_TRUE(cache.store(key, "to be refreshed", 1));
  cache.remove(key);
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_FALSE(cache.fetch(key, 2).has_value());
}

TEST_F(ResultCacheTest, AdoptsEntriesMissingFromTheIndex) {
  const CacheKey key = sample_key();
  {
    ResultCache cache = make_cache();
    ASSERT_TRUE(cache.store(key, "orphan", 1));
  }
  // Simulate a crash between entry rename and index rename.
  fs::remove(dir_ / "index.tsv");
  ResultCache reopened = make_cache();
  EXPECT_EQ(reopened.entry_count(), 1u);
  EXPECT_EQ(reopened.fetch(key, 2).value(), "orphan");
}

TEST_F(ResultCacheTest, CorruptIndexLinesAreSkipped) {
  const CacheKey key = sample_key();
  {
    ResultCache cache = make_cache();
    ASSERT_TRUE(cache.store(key, "indexed", 1));
  }
  std::ofstream(dir_ / "index.tsv", std::ios::app)
      << "zzzz-not-hex\t10\t5\n";
  ResultCache reopened = make_cache();
  EXPECT_EQ(reopened.entry_count(), 1u);
  EXPECT_EQ(reopened.fetch(key, 2).value(), "indexed");
}

TEST_F(ResultCacheTest, ResolveDirPrefersExplicitOverEnvironment) {
  EXPECT_EQ(ResultCache::resolve_dir("/explicit/path"),
            fs::path("/explicit/path"));
  EXPECT_EQ(ResultCache::resolve_dir(""), fs::path(".vdbench-cache"));
}

TEST_F(ResultCacheTest, ResolveMaxBytesPrefersExplicitThenDefault) {
  EXPECT_EQ(ResultCache::resolve_max_bytes(123), 123u);
  EXPECT_EQ(ResultCache::resolve_max_bytes(0), 256ULL << 20);
}

// --- injector-driven fault drills ----------------------------------------
//
// The same corruption classes the hand-crafted tests above exercise, but
// produced through the `cache.read` / `cache.write` fault points — the
// exact machinery CI's fault matrix arms via VDBENCH_FAULTS. Every drill
// asserts the recovery invariant: after the fault, a recompute-and-restore
// cycle yields a payload byte-identical to the uninjected run.

class ResultCacheFaultTest : public ResultCacheTest {
 protected:
  void TearDown() override {
    fault::Injector::global().disarm();
    ResultCacheTest::TearDown();
  }
};

TEST_F(ResultCacheFaultTest, InjectedReadIoErrorIsAMissEntryIntact) {
  ResultCache cache = make_cache();
  const CacheKey key = sample_key();
  ASSERT_TRUE(cache.store(key, "payload", 1));
  fault::Injector::global().arm("cache.read=io_error@e1:1");
  EXPECT_FALSE(cache.fetch(key, 2).has_value());  // injected: plain miss
  EXPECT_EQ(cache.stats().corrupt_entries, 0u);   // not corruption
  EXPECT_TRUE(fs::exists(entry_file(key)));       // entry left intact
  const auto again = cache.fetch(key, 3);         // schedule exhausted
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, "payload");
}

TEST_F(ResultCacheFaultTest, InjectedBitFlipFailsChecksumThenRecomputes) {
  ResultCache cache = make_cache();
  const CacheKey key = sample_key();
  ASSERT_TRUE(cache.store(key, "payload", 1));
  fault::Injector::global().arm("cache.read=corrupt@e1:1");
  EXPECT_FALSE(cache.fetch(key, 2).has_value());
  EXPECT_EQ(cache.stats().corrupt_entries, 1u);
  // Recompute-and-store round trip restores the uninjected bytes.
  ASSERT_TRUE(cache.store(key, "payload", 3));
  const auto restored = cache.fetch(key, 4);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, "payload");
}

TEST_F(ResultCacheFaultTest, InjectedTruncationIsCorruptionThenRecomputes) {
  ResultCache cache = make_cache();
  const CacheKey key = sample_key();
  ASSERT_TRUE(cache.store(key, "a payload long enough to truncate", 1));
  fault::Injector::global().arm("cache.read=truncate@e1:1");
  EXPECT_FALSE(cache.fetch(key, 2).has_value());
  EXPECT_EQ(cache.stats().corrupt_entries, 1u);
  EXPECT_FALSE(fs::exists(entry_file(key)));  // bad entry deleted
  ASSERT_TRUE(cache.store(key, "a payload long enough to truncate", 3));
  const auto restored = cache.fetch(key, 4);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, "a payload long enough to truncate");
}

TEST_F(ResultCacheFaultTest, InjectedWriteIoErrorFailsTheStoreCleanly) {
  // Simulates ENOSPC: the store reports failure, nothing lands on disk, and
  // the retry (schedule exhausted) persists the identical entry bytes a
  // clean first-try store would have produced.
  ResultCache cache = make_cache();
  const CacheKey key = sample_key();
  fault::Injector::global().arm("cache.write=io_error@e1:1");
  EXPECT_FALSE(cache.store(key, "payload", 1));
  EXPECT_FALSE(fs::exists(entry_file(key)));
  EXPECT_EQ(cache.stats().stores, 0u);
  ASSERT_TRUE(cache.store(key, "payload", 2));
  const std::string injected_then_stored = [&] {
    std::ifstream in(entry_file(key), std::ios::binary);
    return std::string{std::istreambuf_iterator<char>(in), {}};
  }();
  fault::Injector::global().disarm();
  fs::remove(entry_file(key));
  ASSERT_TRUE(cache.store(key, "payload", 3));
  std::ifstream in(entry_file(key), std::ios::binary);
  const std::string clean{std::istreambuf_iterator<char>(in), {}};
  EXPECT_EQ(injected_then_stored, clean);
}

TEST_F(ResultCacheFaultTest, InjectedWriteCorruptionIsCaughtOnNextFetch) {
  // A store that persists damaged bytes (torn write survived the rename) is
  // caught by the checksum on the next fetch and degrades to recompute.
  ResultCache cache = make_cache();
  const CacheKey key = sample_key();
  fault::Injector::global().arm("cache.write=corrupt@e1:1");
  ASSERT_TRUE(cache.store(key, "payload", 1));  // store "succeeds"...
  fault::Injector::global().disarm();
  EXPECT_FALSE(cache.fetch(key, 2).has_value());  // ...fetch catches it
  EXPECT_EQ(cache.stats().corrupt_entries, 1u);
  ASSERT_TRUE(cache.store(key, "payload", 3));
  const auto restored = cache.fetch(key, 4);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, "payload");
}

TEST_F(ResultCacheFaultTest, InjectedThrowPropagatesToTheCaller) {
  ResultCache cache = make_cache();
  const CacheKey key = sample_key();
  fault::Injector::global().arm(
      "cache.read=throw@e1:1;cache.write=throw@e1:1");
  EXPECT_THROW((void)cache.store(key, "payload", 1), fault::InjectedFault);
  EXPECT_THROW((void)cache.fetch(key, 2), fault::InjectedFault);
}

TEST_F(ResultCacheFaultTest, KeyFilteredFaultLeavesOtherExperimentsAlone) {
  ResultCache cache = make_cache();
  const CacheKey e1 = sample_key();
  CacheKey e2 = sample_key();
  e2.experiment_id = "e2";
  ASSERT_TRUE(cache.store(e1, "p1", 1));
  ASSERT_TRUE(cache.store(e2, "p2", 2));
  fault::Injector::global().arm("cache.read=io_error@e2:1");
  EXPECT_TRUE(cache.fetch(e1, 3).has_value());   // unaffected
  EXPECT_FALSE(cache.fetch(e2, 4).has_value());  // injected miss
  EXPECT_TRUE(cache.fetch(e2, 5).has_value());   // schedule exhausted
}

}  // namespace
}  // namespace vdbench::cache
