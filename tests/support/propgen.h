// Minimal property-based test generator (header-only, no new deps).
//
// Each test derives its own deterministic random stream by seeding a
// splitmix64 generator from the current gtest suite + test name, so:
//  * failures reproduce exactly on re-run (no time-based seeds), and
//  * adding a case to one test never shifts the stream of another.
// On failure, gtest prints the offending generated value via the usual
// assertion message — include `cm.to_string()` (or equivalent) in every
// property assertion so the counterexample is visible.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>

#include "core/confusion.h"

namespace vdbench::testsupport {

/// Deterministic generator for randomized property tests.
class PropGen {
 public:
  explicit PropGen(std::uint64_t seed) : state_(seed) {}

  /// Seeded from "SuiteName.TestName" of the currently running test.
  static PropGen from_current_test() {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    std::string name = "propgen";
    if (info != nullptr)
      name = std::string(info->test_suite_name()) + "." + info->name();
    return PropGen(fnv1a(name));
  }

  /// splitmix64 step: uniform 64-bit output, passes statistical tests and
  /// never has a zero-length cycle regardless of seed.
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound] (bound inclusive, small biases are
  /// irrelevant for property generation).
  std::uint64_t below(std::uint64_t bound) {
    return bound == 0 ? 0 : next_u64() % (bound + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Random confusion matrix with cells in [0, cell_max]. One case in four
  /// zeroes a random cell so degenerate denominators (empty positive class,
  /// no reports, ...) are exercised, not just the bulk of the space.
  core::ConfusionMatrix confusion(std::uint64_t cell_max = 400) {
    core::ConfusionMatrix cm;
    cm.tp = below(cell_max);
    cm.fp = below(cell_max);
    cm.tn = below(cell_max);
    cm.fn = below(cell_max);
    if (below(3) == 0) {
      switch (below(3)) {
        case 0: cm.tp = 0; break;
        case 1: cm.fp = 0; break;
        case 2: cm.tn = 0; break;
        default: cm.fn = 0; break;
      }
    }
    return cm;
  }

 private:
  static std::uint64_t fnv1a(std::string_view text) {
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (const char c : text) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001B3ULL;
    }
    return h;
  }

  std::uint64_t state_;
};

}  // namespace vdbench::testsupport
