#include "report/chart.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace vdbench::report {
namespace {

Series ramp(std::string name, double slope) {
  Series s;
  s.name = std::move(name);
  for (int i = 1; i <= 10; ++i) {
    s.x.push_back(i);
    s.y.push_back(slope * i);
  }
  return s;
}

TEST(LineChartTest, RendersLegendAndAxes) {
  LineChart chart("test chart", "x", "value");
  chart.add_series(ramp("up", 1.0));
  chart.add_series(ramp("down", -1.0));
  std::ostringstream oss;
  chart.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("test chart"), std::string::npos);
  EXPECT_NE(out.find("legend:"), std::string::npos);
  EXPECT_NE(out.find("*=up"), std::string::npos);
  EXPECT_NE(out.find("o=down"), std::string::npos);
}

TEST(LineChartTest, ThrowsWithoutSeries) {
  LineChart chart("empty", "x", "y");
  std::ostringstream oss;
  EXPECT_THROW(chart.print(oss), std::logic_error);
}

TEST(LineChartTest, RejectsBadSeriesAndSizes) {
  LineChart chart("t", "x", "y");
  Series bad;
  bad.name = "bad";
  bad.x = {1.0, 2.0};
  bad.y = {1.0};
  EXPECT_THROW(chart.add_series(bad), std::invalid_argument);
  EXPECT_THROW(chart.set_size(4, 2), std::invalid_argument);
  EXPECT_THROW(chart.set_y_range(1.0, 1.0), std::invalid_argument);
}

TEST(LineChartTest, SkipsNaNPoints) {
  LineChart chart("nan", "x", "y");
  Series s;
  s.name = "partial";
  s.x = {1.0, 2.0, 3.0};
  s.y = {0.5, std::nan(""), 0.7};
  chart.add_series(s);
  std::ostringstream oss;
  EXPECT_NO_THROW(chart.print(oss));
}

TEST(LineChartTest, LogXHandlesDecades) {
  LineChart chart("log", "prevalence", "metric");
  chart.set_log_x(true);
  Series s;
  s.name = "m";
  s.x = {0.001, 0.01, 0.1, 0.5};
  s.y = {0.1, 0.3, 0.6, 0.9};
  chart.add_series(s);
  std::ostringstream oss;
  chart.print(oss);
  EXPECT_NE(oss.str().find("log scale"), std::string::npos);
}

TEST(LineChartTest, FixedYRangeClipsOutliers) {
  LineChart chart("clip", "x", "y");
  chart.set_y_range(0.0, 1.0);
  Series s;
  s.name = "wild";
  s.x = {1.0, 2.0};
  s.y = {0.5, 100.0};
  chart.add_series(s);
  std::ostringstream oss;
  EXPECT_NO_THROW(chart.print(oss));
  EXPECT_NE(oss.str().find("1.00"), std::string::npos);
}

TEST(HeatmapTest, RendersLabelsAndScale) {
  Heatmap hm("agreement", {"mcc", "f1"}, {"mcc", "f1"},
             {{1.0, 0.5}, {0.5, 1.0}});
  std::ostringstream oss;
  hm.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("agreement"), std::string::npos);
  EXPECT_NE(out.find("scale:"), std::string::npos);
  EXPECT_NE(out.find("A=mcc"), std::string::npos);
  EXPECT_NE(out.find("B=f1"), std::string::npos);
}

TEST(HeatmapTest, NaNRendersQuestionMark) {
  Heatmap hm("partial", {"a"}, {"x", "y"}, {{std::nan(""), 1.0}});
  std::ostringstream oss;
  hm.print(oss);
  EXPECT_NE(oss.str().find('?'), std::string::npos);
}

TEST(HeatmapTest, RejectsRaggedInput) {
  EXPECT_THROW(Heatmap("bad", {"a", "b"}, {"x"}, {{1.0}}),
               std::invalid_argument);
  EXPECT_THROW(Heatmap("bad", {"a"}, {"x", "y"}, {{1.0}}),
               std::invalid_argument);
}

TEST(HeatmapTest, SetRangeValidation) {
  Heatmap hm("t", {"a"}, {"x"}, {{0.5}});
  EXPECT_THROW(hm.set_range(1.0, 0.0), std::invalid_argument);
  hm.set_range(0.0, 1.0);
  std::ostringstream oss;
  EXPECT_NO_THROW(hm.print(oss));
}

}  // namespace
}  // namespace vdbench::report
