#include "report/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace vdbench::report {
namespace {

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriterTest, SimpleObject) {
  JsonWriter w;
  w.begin_object()
      .field("name", "vdbench")
      .field("metrics", std::uint64_t{32})
      .field("valid", true)
      .end_object();
  EXPECT_EQ(w.str(), R"({"name":"vdbench","metrics":32,"valid":true})");
}

TEST(JsonWriterTest, NestedStructures) {
  JsonWriter w;
  w.begin_object();
  w.key("rows");
  w.begin_array();
  w.begin_object().field("x", 1).end_object();
  w.begin_object().field("x", 2).end_object();
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"rows":[{"x":1},{"x":2}]})");
}

TEST(JsonWriterTest, DoubleArrayField) {
  JsonWriter w;
  w.begin_object();
  w.field("xs", std::vector<double>{0.5, 1.0});
  w.end_object();
  EXPECT_EQ(w.str(), R"({"xs":[0.5,1]})");
}

TEST(JsonWriterTest, NonFiniteBecomesNull) {
  JsonWriter w;
  w.begin_array()
      .value(std::nan(""))
      .value(std::numeric_limits<double>::infinity())
      .value(1.5)
      .end_array();
  EXPECT_EQ(w.str(), "[null,null,1.5]");
}

TEST(JsonWriterTest, TopLevelScalarAllowedOnce) {
  JsonWriter w;
  w.value(42);
  EXPECT_EQ(w.str(), "42");
  EXPECT_THROW(w.value(43), std::logic_error);
}

TEST(JsonWriterTest, MisuseThrows) {
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value(1), std::logic_error);  // value without key
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.key("k"), std::logic_error);  // key in array
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.end_array(), std::logic_error);  // mismatched end
  }
  {
    JsonWriter w;
    w.begin_object().key("dangling");
    EXPECT_THROW(w.end_object(), std::logic_error);  // key without value
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.str(), std::logic_error);  // incomplete document
  }
  {
    JsonWriter w;
    EXPECT_THROW(w.str(), std::logic_error);  // empty document
  }
}

TEST(JsonWriterTest, EscapedKeyAndValue) {
  JsonWriter w;
  w.begin_object().field("a\"b", "c\nd").end_object();
  EXPECT_EQ(w.str(), "{\"a\\\"b\":\"c\\nd\"}");
}

}  // namespace
}  // namespace vdbench::report
