#include "report/table.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

namespace vdbench::report {
namespace {

TEST(TableTest, RejectsEmptyHeaderAndBadRows) {
  EXPECT_THROW(Table{std::vector<std::string>{}}, std::invalid_argument);
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
  EXPECT_THROW(t.set_align(5, Align::kLeft), std::out_of_range);
}

TEST(TableTest, PrintContainsAllCells) {
  Table t({"tool", "recall"});
  t.add_row({"SA-Pro", "0.91"});
  t.add_row({"PT-Lite", "0.55"});
  std::ostringstream oss;
  t.print(oss);
  const std::string out = oss.str();
  for (const char* needle : {"tool", "recall", "SA-Pro", "0.91", "PT-Lite"})
    EXPECT_NE(out.find(needle), std::string::npos) << needle;
}

TEST(TableTest, ColumnsPadToEqualWidth) {
  Table t({"x", "y"});
  t.add_row({"longlonglong", "1"});
  std::ostringstream oss;
  t.print(oss);
  std::istringstream lines(oss.str());
  std::string first, line;
  std::getline(lines, first);
  while (std::getline(lines, line)) EXPECT_EQ(line.size(), first.size());
}

TEST(TableTest, CsvEscaping) {
  Table t({"name", "note"});
  t.add_row({"a,b", "say \"hi\""});
  std::ostringstream oss;
  t.print_csv(oss);
  EXPECT_EQ(oss.str(), "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(TableTest, CountsRowsAndColumns) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.columns(), 3u);
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(FormatValueTest, Precision) {
  EXPECT_EQ(format_value(1.23456, 2), "1.23");
  EXPECT_EQ(format_value(1.0, 0), "1");
  EXPECT_EQ(format_value(-0.5, 1), "-0.5");
}

TEST(FormatValueTest, SpecialValues) {
  EXPECT_EQ(format_value(std::nan("")), "-");
  EXPECT_EQ(format_value(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(format_value(-std::numeric_limits<double>::infinity()), "-inf");
}

TEST(FormatPercentTest, Rendering) {
  EXPECT_EQ(format_percent(0.1234), "12.3%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
  EXPECT_EQ(format_percent(std::nan("")), "-");
}

}  // namespace
}  // namespace vdbench::report
