#include "report/export.h"

#include <gtest/gtest.h>

namespace vdbench::report {
namespace {

core::StudyConfig fast_study_config() {
  core::StudyConfig cfg;
  cfg.assessment.trials = 40;
  cfg.assessment.asymptotic_items = 50'000;
  cfg.analyzer.pair_trials = 150;
  cfg.scenarios = {core::builtin_scenario("s3_balanced")};
  return cfg;
}

// Cheap structural checks: balanced braces/brackets and expected markers.
void expect_balanced(const std::string& json) {
  long braces = 0, brackets = 0;
  bool in_string = false, escaped = false;
  for (const char ch : json) {
    if (in_string) {
      if (escaped)
        escaped = false;
      else if (ch == '\\')
        escaped = true;
      else if (ch == '"')
        in_string = false;
      continue;
    }
    switch (ch) {
      case '"':
        in_string = true;
        break;
      case '{':
        ++braces;
        break;
      case '}':
        --braces;
        break;
      case '[':
        ++brackets;
        break;
      case ']':
        --brackets;
        break;
      default:
        break;
    }
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST(StudyExportTest, ProducesBalancedDocumentWithAllSections) {
  core::Study study(fast_study_config());
  study.run();
  const std::string json = study_to_json(study);
  expect_balanced(json);
  for (const char* marker :
       {"\"assessments\"", "\"scenarios\"", "\"recommendation\"",
        "\"validation\"", "\"ranking_fidelity\"", "\"ahp_weights\"",
        "\"s3_balanced\"", "\"mcc\"", "\"validated\""})
    EXPECT_NE(json.find(marker), std::string::npos) << marker;
}

TEST(StudyExportTest, ThrowsBeforeRun) {
  const core::Study study(fast_study_config());
  EXPECT_THROW(study_to_json(study), std::logic_error);
}

TEST(SuiteExportTest, ProducesBalancedDocument) {
  vdsim::SuiteConfig cfg;
  cfg.workload.num_services = 30;
  cfg.runs = 5;
  cfg.bootstrap_replicates = 100;
  const std::vector<vdsim::ToolProfile> tools = {
      vdsim::make_archetype_profile(vdsim::ToolArchetype::kStaticAnalyzer,
                                    0.7, "a"),
      vdsim::make_archetype_profile(vdsim::ToolArchetype::kFuzzer, 0.5, "b")};
  stats::Rng rng(1);
  const vdsim::SuiteResult suite = run_suite(
      tools, {core::MetricId::kFMeasure}, cfg, rng);
  const std::string json = suite_to_json(suite);
  expect_balanced(json);
  for (const char* marker : {"\"tools\"", "\"comparisons\"", "\"p_value\"",
                             "\"ci_lower\"", "\"f1\"", "\"values\""})
    EXPECT_NE(json.find(marker), std::string::npos) << marker;
}

}  // namespace
}  // namespace vdbench::report
