#include "report/json_reader.h"

#include <gtest/gtest.h>

#include <string>

#include "report/json.h"

namespace vdbench::report {
namespace {

TEST(JsonReaderTest, ParsesLiterals) {
  EXPECT_TRUE(parse_json("null")->is_null());
  EXPECT_EQ(parse_json("true")->as_bool(), true);
  EXPECT_EQ(parse_json("false")->as_bool(), false);
}

TEST(JsonReaderTest, ParsesNumbers) {
  EXPECT_DOUBLE_EQ(parse_json("0")->as_number().value(), 0.0);
  EXPECT_DOUBLE_EQ(parse_json("-17")->as_number().value(), -17.0);
  EXPECT_DOUBLE_EQ(parse_json("3.25")->as_number().value(), 3.25);
  EXPECT_DOUBLE_EQ(parse_json("1e3")->as_number().value(), 1000.0);
  EXPECT_DOUBLE_EQ(parse_json("-2.5E-2")->as_number().value(), -0.025);
}

TEST(JsonReaderTest, ParsesStringsWithEscapes) {
  EXPECT_EQ(*parse_json(R"("plain")")->as_string(), "plain");
  EXPECT_EQ(*parse_json(R"("a\"b\\c\/d")")->as_string(), "a\"b\\c/d");
  EXPECT_EQ(*parse_json(R"("tab\there\nnewline")")->as_string(),
            "tab\there\nnewline");
  // \uXXXX escapes decode to UTF-8 bytes (1-, 2- and 3-byte sequences).
  EXPECT_EQ(*parse_json("\"\\u0041\"")->as_string(), "A");
  EXPECT_EQ(*parse_json("\"\\u00e9\"")->as_string(), "\xc3\xa9");
  EXPECT_EQ(*parse_json("\"\\u20ac\"")->as_string(), "\xe2\x82\xac");
  EXPECT_FALSE(parse_json("\"\\u12\"").has_value());
  EXPECT_FALSE(parse_json("\"\\q\"").has_value());
}

TEST(JsonReaderTest, ParsesArraysAndObjects) {
  const auto doc = parse_json(R"({"xs":[1,2,3],"nested":{"ok":true}})");
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  const auto* xs = doc->member("xs")->as_array();
  ASSERT_NE(xs, nullptr);
  ASSERT_EQ(xs->size(), 3u);
  EXPECT_DOUBLE_EQ((*xs)[2].as_number().value(), 3.0);
  EXPECT_EQ(doc->member("nested")->member("ok")->as_bool(), true);
  EXPECT_EQ(doc->member("absent"), nullptr);
}

TEST(JsonReaderTest, AccessorsRejectWrongKind) {
  const auto doc = parse_json("[1]");
  EXPECT_EQ(doc->as_bool(), std::nullopt);
  EXPECT_EQ(doc->as_number(), std::nullopt);
  EXPECT_EQ(doc->as_string(), nullptr);
  EXPECT_EQ(doc->member("x"), nullptr);
}

TEST(JsonReaderTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(parse_json("").has_value());
  EXPECT_FALSE(parse_json("{").has_value());
  EXPECT_FALSE(parse_json("[1,]").has_value());
  EXPECT_FALSE(parse_json(R"({"a":})").has_value());
  EXPECT_FALSE(parse_json(R"({"a" 1})").has_value());
  EXPECT_FALSE(parse_json("nul").has_value());
  EXPECT_FALSE(parse_json("\"unterminated").has_value());
  EXPECT_FALSE(parse_json("01").has_value());
  EXPECT_FALSE(parse_json("NaN").has_value());
}

TEST(JsonReaderTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(parse_json("1 2").has_value());
  EXPECT_FALSE(parse_json("{} extra").has_value());
  EXPECT_TRUE(parse_json("  {}  ").has_value());
}

TEST(JsonReaderTest, RejectsPathologicalNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  for (int i = 0; i < 100; ++i) deep += ']';
  EXPECT_FALSE(parse_json(deep).has_value());
  std::string shallow = "[[[[[[[[[[1]]]]]]]]]]";
  EXPECT_TRUE(parse_json(shallow).has_value());
}

TEST(JsonReaderTest, RoundTripsJsonWriterOutput) {
  // The parser's contract: everything JsonWriter emits parses back.
  JsonWriter w;
  w.begin_object();
  w.key("text").value("line1\nline2\t\"quoted\"");
  w.key("count").value(std::uint64_t{7});
  w.key("ratio").value(0.375);
  w.key("flag").value(true);
  w.key("items").begin_array();
  w.value("a");
  w.value("b");
  w.end_array();
  w.end_object();
  const auto doc = parse_json(w.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(*doc->member("text")->as_string(), "line1\nline2\t\"quoted\"");
  EXPECT_DOUBLE_EQ(doc->member("count")->as_number().value(), 7.0);
  EXPECT_DOUBLE_EQ(doc->member("ratio")->as_number().value(), 0.375);
  EXPECT_EQ(doc->member("flag")->as_bool(), true);
  EXPECT_EQ(doc->member("items")->as_array()->size(), 2u);
}

TEST(JsonReaderTest, DiagnosingOverloadReportsOffsetAndReason) {
  JsonError error;
  // Truncation: the parser runs off the end mid-value; the offset is the
  // exact byte where the document stopped making sense.
  const std::string truncated = R"({"key":)";
  EXPECT_FALSE(parse_json(truncated, &error).has_value());
  EXPECT_EQ(error.offset, truncated.size());
  EXPECT_EQ(error.reason, "unexpected end of document");
  EXPECT_NE(error.message().find("at offset 7"), std::string::npos)
      << error.message();

  // Trailing garbage points at the first unexpected byte.
  EXPECT_FALSE(parse_json("{} extra", &error).has_value());
  EXPECT_EQ(error.offset, 3u);
  EXPECT_EQ(error.reason, "trailing content after document");
  EXPECT_NE(error.excerpt.find("extra"), std::string::npos) << error.excerpt;
}

TEST(JsonReaderTest, DiagnosingOverloadRecordsTheDeepestFailure) {
  // The failure surfaces from deep inside the grammar (an unterminated
  // string inside an array inside an object); the recorded error is that
  // innermost point, not a generic complaint about the enclosing object.
  JsonError error;
  const std::string doc = R"({"xs":[1,"oops)";
  EXPECT_FALSE(parse_json(doc, &error).has_value());
  EXPECT_EQ(error.reason, "unterminated string");
  EXPECT_EQ(error.offset, doc.size());
}

TEST(JsonReaderTest, ExcerptRendersControlBytesAsDots) {
  JsonError error;
  std::string doc = "{\"k\":\"ab";
  doc += '\x01';
  doc += "cd\"}";
  EXPECT_FALSE(parse_json(doc, &error).has_value());
  EXPECT_EQ(error.reason, "unescaped control character in string");
  EXPECT_EQ(error.offset, 8u);  // the control byte itself
  EXPECT_EQ(error.excerpt.find('\x01'), std::string::npos);
  EXPECT_NE(error.excerpt.find("ab.cd"), std::string::npos) << error.excerpt;
  // message() is fault-spec styled: "<reason> at offset <N> near '<w>'".
  EXPECT_EQ(error.message(),
            error.reason + " at offset 8 near '" + error.excerpt + "'");
}

TEST(JsonReaderTest, DiagnosingOverloadResetsOnEachCall) {
  JsonError error;
  EXPECT_FALSE(parse_json("[", &error).has_value());
  EXPECT_FALSE(error.reason.empty());
  // A subsequent success clears the previous diagnosis.
  EXPECT_TRUE(parse_json("[]", &error).has_value());
  EXPECT_TRUE(error.reason.empty());
  EXPECT_EQ(error.offset, 0u);
}

}  // namespace
}  // namespace vdbench::report
