// vdlint fixture: sanctioned clock helper — vdl-time stays quiet.
#include "obs/clock.h"

std::uint64_t stamp_now() { return vdbench::obs::wall_clock_seconds(); }
