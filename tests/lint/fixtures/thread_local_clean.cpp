// vdlint fixture: shared atomic state — vdl-thread-local stays quiet.
#include <atomic>

std::atomic<int> shared_counter{0};
