// vdlint fixture: namespaced env read — vdl-env-prefix stays quiet.
#include <cstdlib>

const char* read_knob() { return std::getenv("VDBENCH_THREADS"); }
