// vdlint fixture: std::random_device — must fire vdl-random-device.
#include <random>

unsigned hardware_seed() { return std::random_device{}(); }
