// vdlint fixture: seeded Rng draw — vdl-rand stays quiet.
#include "stats/rng.h"

int seeded_choice(vdbench::stats::Rng& rng) {
  return static_cast<int>(rng.uniform_int(0, 6));
}
