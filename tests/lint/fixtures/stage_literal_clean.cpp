// vdlint fixture: stage label via constant — vdl-stage-literal stays quiet.
#include "experiments.h"

const char* stage_label() { return vdbench::bench::stage::kStage1Assessment; }
