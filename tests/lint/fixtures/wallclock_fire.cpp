// vdlint fixture: system_clock::now() — must fire vdl-wallclock-now.
#include <chrono>

std::chrono::system_clock::time_point grab_wall_clock() {
  return std::chrono::system_clock::now();
}
