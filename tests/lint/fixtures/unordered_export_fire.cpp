// vdlint fixture: unordered container next to JsonWriter — must fire
// vdl-unordered-export.
#include <string>
#include <unordered_map>

#include "report/json.h"

std::string export_counts(const std::unordered_map<std::string, int>& m);
