// vdlint fixture: unregistered fault point — must fire vdl-fault-point.
#include "fault/injector.h"

vdbench::fault::Action poke_injector() {
  return vdbench::fault::Injector::global().hit("cache.reed");
}
