// vdlint fixture: unprefixed env read — must fire vdl-env-prefix.
#include <cstdlib>

const char* read_knob() { return std::getenv("VD_THREADS"); }
