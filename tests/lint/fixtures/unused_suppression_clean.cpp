// vdlint fixture: a suppression that earns its keep — quiet.
#include <cstdlib>

// vdlint:allow(vdl-rand)
int deliberately_unseeded() { return std::rand(); }
