// vdlint fixture: configured seed — vdl-random-device stays quiet.
#include "stats/rng.h"

vdbench::stats::Rng configured_rng(std::uint64_t seed) {
  return vdbench::stats::Rng(seed);
}
