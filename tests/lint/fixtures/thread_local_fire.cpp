// vdlint fixture: thread_local outside the allowlist — must fire
// vdl-thread-local.

thread_local int per_thread_counter = 0;
