// vdlint fixture: parent-relative include — must fire vdl-include-path.
#include "../core/metrics.h"

int use_metrics();
