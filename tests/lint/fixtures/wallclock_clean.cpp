// vdlint fixture: monotonic clock — vdl-wallclock-now stays quiet.
#include <chrono>

std::chrono::steady_clock::time_point grab_monotonic() {
  return std::chrono::steady_clock::now();
}
