// vdlint fixture: stale allow comment — must fire vdl-unused-suppression.

// vdlint:allow(vdl-rand)
int nothing_random();
