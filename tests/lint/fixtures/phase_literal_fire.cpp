// vdlint fixture: raw phase literal — must fire vdl-phase-literal.
#include "stats/timer.h"

void run_phase(vdbench::stats::StageTimer& timer) {
  const auto scope = timer.scope("warmup");
}
