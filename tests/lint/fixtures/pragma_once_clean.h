// vdlint fixture: guarded header — vdl-pragma-once stays quiet.
#pragma once

int fixture_value();
