// vdlint fixture: phase via constant — vdl-phase-literal stays quiet.
#include "experiments.h"
#include "stats/timer.h"

void run_phase(vdbench::stats::StageTimer& timer) {
  const auto scope = timer.scope(vdbench::bench::stage::kChecksum);
}
