// vdlint fixture: registered span spellings — vdl-span-name stays quiet.
#include "obs/names.h"
#include "obs/trace.h"

void trace_step(const char* detail) {
  const vdbench::obs::Span span(vdbench::obs::names::kDriverExperiment);
  vdbench::obs::instant("fault.fire", detail);
}
