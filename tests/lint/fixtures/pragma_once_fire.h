// vdlint fixture: header without #pragma once — must fire vdl-pragma-once.

int fixture_value();
