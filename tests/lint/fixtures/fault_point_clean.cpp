// vdlint fixture: registered fault point — vdl-fault-point stays quiet.
#include "fault/injector.h"

vdbench::fault::Action poke_injector() {
  return vdbench::fault::Injector::global().hit("cache.read");
}
