// vdlint fixture: root-relative include — vdl-include-path stays quiet.
#include "core/metrics.h"

int use_metrics();
