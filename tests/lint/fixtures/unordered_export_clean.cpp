// vdlint fixture: ordered container — vdl-unordered-export stays quiet.
#include <map>
#include <string>

#include "report/json.h"

std::string export_counts(const std::map<std::string, int>& m);
