// vdlint fixture: unregistered span literal — must fire vdl-span-name.
#include "obs/trace.h"

void trace_step() { const vdbench::obs::Span span("driver.experimnt"); }
