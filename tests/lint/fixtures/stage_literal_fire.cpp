// vdlint fixture: respelled stage label — must fire vdl-stage-literal.

const char* stage_label() { return "stage 1 assessment"; }
