// vdlint fixture: std::rand — must fire vdl-rand.
#include <cstdlib>

int unseeded_choice() { return std::rand() % 6; }
