// vdlint fixture: libc time() — must fire vdl-time.
#include <ctime>

long stamp_now() { return static_cast<long>(std::time(nullptr)); }
