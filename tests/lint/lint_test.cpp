// vdlint test suite: scanner behavior, suppression semantics, every rule
// proven to fire on its checked-in fixture and stay quiet on the clean
// twin, the SARIF golden, and the self-scan gate (the repo's own sources
// lint clean — the same invariant CI's lint-self job enforces).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "experiments.h"
#include "lint/analyzer.h"
#include "lint/names.h"
#include "lint/output.h"
#include "lint/rules.h"
#include "lint/scanner.h"

namespace vdbench::lint {
namespace {

namespace fs = std::filesystem;

const fs::path kRepoRoot{VDBENCH_SOURCE_DIR};

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), {}};
}

// --- scanner -------------------------------------------------------------

TEST(CppScannerTest, TokenizesIdentifiersPunctsAndCombinedOperators) {
  const std::vector<CppToken> tokens = scan_cpp("a::b->c(d);");
  ASSERT_EQ(tokens.size(), 10u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "::");
  EXPECT_EQ(tokens[1].type, CppTokenType::kPunct);
  EXPECT_EQ(tokens[3].text, "->");
  EXPECT_EQ(tokens[9].type, CppTokenType::kEndOfFile);
}

TEST(CppScannerTest, CountsCrlfAndLfLinesIdentically) {
  const std::vector<CppToken> lf = scan_cpp("one\ntwo\nthree");
  const std::vector<CppToken> crlf = scan_cpp("one\r\ntwo\r\nthree");
  ASSERT_EQ(lf.size(), crlf.size());
  for (std::size_t i = 0; i < lf.size(); ++i) {
    EXPECT_EQ(lf[i].line, crlf[i].line) << "token " << i;
    EXPECT_EQ(lf[i].text, crlf[i].text) << "token " << i;
  }
  EXPECT_EQ(lf[2].line, 3u);
}

TEST(CppScannerTest, KeepsCommentsAndClassifiesDirectives) {
  const std::vector<CppToken> tokens =
      scan_cpp("#include \"core/metrics.h\"\n// note\nint x; /* block */");
  ASSERT_GE(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].type, CppTokenType::kDirective);
  EXPECT_EQ(tokens[0].text, "include \"core/metrics.h\"");
  EXPECT_EQ(tokens[1].type, CppTokenType::kComment);
  EXPECT_EQ(tokens[1].text, "// note");
  EXPECT_EQ(tokens.back().type, CppTokenType::kEndOfFile);
}

TEST(CppScannerTest, HashInExpressionContextIsNotADirective) {
  // '#' only opens a directive at the start of a line; mid-line it is
  // ordinary punctuation (stringize in macro bodies).
  const std::vector<CppToken> tokens = scan_cpp("int a; #oops");
  bool saw_directive = false;
  for (const CppToken& token : tokens)
    saw_directive = saw_directive || token.type == CppTokenType::kDirective;
  EXPECT_FALSE(saw_directive);
}

TEST(CppScannerTest, RawStringsAndEscapesScanWithoutConfusion) {
  const std::vector<CppToken> tokens =
      scan_cpp("auto a = R\"(no \" escape)\"; auto b = \"q\\\"r\";");
  std::vector<std::string> strings;
  for (const CppToken& token : tokens)
    if (token.type == CppTokenType::kString) strings.push_back(token.text);
  ASSERT_EQ(strings.size(), 2u);
  EXPECT_EQ(strings[0], "no \" escape");
  EXPECT_EQ(strings[1], "q\\\"r");
}

TEST(CppScannerTest, UnterminatedLiteralsAndCommentsEndAtEofWithoutThrow) {
  EXPECT_EQ(scan_cpp("auto s = \"never closed").back().type,
            CppTokenType::kEndOfFile);
  EXPECT_EQ(scan_cpp("/* runs off the end").back().type,
            CppTokenType::kEndOfFile);
  EXPECT_EQ(scan_cpp("auto c = 'x").back().type, CppTokenType::kEndOfFile);
  EXPECT_EQ(scan_cpp("auto r = R\"(open forever").back().type,
            CppTokenType::kEndOfFile);
}

// --- name tables ---------------------------------------------------------

TEST(NameTablesTest, ParsesTheThreeDefiningHeaders) {
  const NameTables tables = load_name_tables(kRepoRoot);
  EXPECT_TRUE(tables.span_names.contains("driver.experiment"));
  EXPECT_TRUE(tables.span_names.contains("fault.fire"));
  EXPECT_GE(tables.span_names.size(), 19u);
  EXPECT_TRUE(tables.fault_points.contains("cache.read"));
  EXPECT_TRUE(tables.fault_points.contains("stream.consume"));
  EXPECT_TRUE(tables.fault_points.contains("net.read"));
  EXPECT_TRUE(tables.fault_points.contains("net.frame"));
  EXPECT_TRUE(tables.fault_points.contains("corpus.read"));
  EXPECT_EQ(tables.fault_points.size(), 12u);
  // Compare against the compiled constants: the runtime parse of
  // bench/experiments.h must agree with what the compiler saw.
  EXPECT_TRUE(tables.stage_names.contains(bench::stage::kStage1Assessment));
  EXPECT_TRUE(tables.stage_names.contains(bench::stage::kChecksum));
  EXPECT_EQ(tables.stage_prefixes.size(), 4u);
  EXPECT_EQ(tables.stage_prefixes[0], bench::stage::kStage2Prefix);
  ASSERT_FALSE(tables.stage_prefixes.empty());
  EXPECT_TRUE(tables.stage_names.size() >= 20u);
}

TEST(NameTablesTest, MissingRootIsAHardError) {
  EXPECT_THROW(load_name_tables(kRepoRoot / "no-such-dir"),
               std::runtime_error);
}

// --- rule registry -------------------------------------------------------

TEST(RuleRegistryTest, DefaultRulesAreUniqueAndAtLeastTen) {
  const RuleRegistry registry = RuleRegistry::default_rules();
  EXPECT_GE(registry.rules().size(), 10u);
  EXPECT_NE(registry.find("vdl-rand"), nullptr);
  EXPECT_NE(registry.find(kUnusedSuppressionRule), nullptr);
  EXPECT_EQ(registry.find("vdl-bogus"), nullptr);
}

TEST(RuleRegistryTest, RejectsDuplicateAndEmptyIds) {
  RuleRegistry registry;
  LintRule rule;
  rule.id = "vdl-x";
  rule.check = [](const LintContext&, std::vector<Finding>&) {};
  registry.add(rule);
  EXPECT_THROW(registry.add(rule), std::invalid_argument);
  rule.id = "";
  EXPECT_THROW(registry.add(rule), std::invalid_argument);
}

// --- fixtures: every rule fires, every clean twin stays quiet ------------

struct FixtureCase {
  const char* slug;
  const char* rule;
  const char* fire_ext = ".cpp";
};

const FixtureCase kFixtureCases[] = {
    {"rand", "vdl-rand"},
    {"random_device", "vdl-random-device"},
    {"time", "vdl-time"},
    {"wallclock", "vdl-wallclock-now"},
    {"span_name", "vdl-span-name"},
    {"fault_point", "vdl-fault-point"},
    {"stage_literal", "vdl-stage-literal"},
    {"phase_literal", "vdl-phase-literal"},
    {"unordered_export", "vdl-unordered-export"},
    {"env_prefix", "vdl-env-prefix"},
    {"thread_local", "vdl-thread-local"},
    {"pragma_once", "vdl-pragma-once", ".h"},
    {"include_path", "vdl-include-path"},
    {"unused_suppression", "vdl-unused-suppression"},
};

class FixtureRuleTest : public ::testing::TestWithParam<FixtureCase> {
 protected:
  static std::vector<Finding> analyze(const std::string& name) {
    static const NameTables tables = load_name_tables(kRepoRoot);
    static const RuleRegistry registry = RuleRegistry::default_rules();
    const std::string display = "tests/lint/fixtures/" + name;
    return analyze_file(kRepoRoot / "tests" / "lint" / "fixtures" / name,
                        display, tables, registry);
  }
};

TEST_P(FixtureRuleTest, FireFixtureYieldsExactlyItsRulesFinding) {
  const FixtureCase& c = GetParam();
  const std::vector<Finding> findings =
      analyze(std::string(c.slug) + "_fire" + c.fire_ext);
  ASSERT_EQ(findings.size(), 1u) << render_human(findings);
  EXPECT_EQ(findings[0].rule, c.rule);
  EXPECT_GT(findings[0].line, 0u);
  EXPECT_GT(findings[0].column, 0u);
}

TEST_P(FixtureRuleTest, CleanTwinStaysQuiet) {
  const FixtureCase& c = GetParam();
  const std::string ext =
      std::string(c.slug) == "pragma_once" ? ".h" : ".cpp";
  const std::vector<Finding> findings =
      analyze(std::string(c.slug) + "_clean" + ext);
  EXPECT_TRUE(findings.empty()) << render_human(findings);
}

INSTANTIATE_TEST_SUITE_P(AllRules, FixtureRuleTest,
                         ::testing::ValuesIn(kFixtureCases),
                         [](const auto& info) {
                           std::string name = info.param.slug;
                           return name;
                         });

// --- suppressions --------------------------------------------------------

class SuppressionTest : public ::testing::Test {
 protected:
  std::vector<Finding> analyze(std::string_view source) {
    return analyze_source("src/example.cpp", source, tables_, registry_);
  }
  const NameTables tables_ = load_name_tables(kRepoRoot);
  const RuleRegistry registry_ = RuleRegistry::default_rules();
};

TEST_F(SuppressionTest, TrailingCommentSilencesItsOwnLine) {
  const std::vector<Finding> findings = analyze(
      "int f() { return std::rand(); }  // vdlint:allow(vdl-rand)\n");
  EXPECT_TRUE(findings.empty()) << render_human(findings);
}

TEST_F(SuppressionTest, StandaloneCommentSilencesTheNextLine) {
  const std::vector<Finding> findings = analyze(
      "// vdlint:allow(vdl-rand)\nint f() { return std::rand(); }\n");
  EXPECT_TRUE(findings.empty()) << render_human(findings);
}

TEST_F(SuppressionTest, CommentDoesNotReachPastTheNextLine) {
  const std::vector<Finding> findings = analyze(
      "// vdlint:allow(vdl-rand)\nint g();\nint f() { return std::rand(); }\n");
  ASSERT_EQ(findings.size(), 2u) << render_human(findings);
  // The rand on line 3 still fires and the allow on line 1 is now unused.
  EXPECT_EQ(findings[0].rule, kUnusedSuppressionRule);
  EXPECT_EQ(findings[1].rule, "vdl-rand");
}

TEST_F(SuppressionTest, ListedRulesAllApplyAndUnlistedStay) {
  const std::vector<Finding> findings = analyze(
      "// vdlint:allow(vdl-rand, vdl-random-device)\n"
      "int f() { return std::rand() + (int)std::random_device{}(); }\n");
  EXPECT_TRUE(findings.empty()) << render_human(findings);
}

TEST_F(SuppressionTest, UnusedSuppressionCannotItselfBeSuppressed) {
  const std::vector<Finding> findings = analyze(
      "// vdlint:allow(vdl-unused-suppression)\nint f();\n");
  ASSERT_EQ(findings.size(), 1u) << render_human(findings);
  EXPECT_EQ(findings[0].rule, kUnusedSuppressionRule);
}

// --- output --------------------------------------------------------------

TEST(OutputTest, SarifGoldenMatchesAndRendersDeterministically) {
  const NameTables tables = load_name_tables(kRepoRoot);
  const RuleRegistry registry = RuleRegistry::default_rules();
  const std::vector<SourceFile> files =
      collect_files(kRepoRoot, {"tests/lint/fixtures"});
  ASSERT_EQ(files.size(), 28u);
  std::vector<Finding> findings;
  for (const SourceFile& file : files) {
    std::vector<Finding> f =
        analyze_file(file.path, file.display, tables, registry);
    findings.insert(findings.end(), f.begin(), f.end());
  }
  const std::string sarif = render_sarif(findings, registry);
  EXPECT_EQ(sarif, render_sarif(findings, registry));
  EXPECT_EQ(sarif, slurp(kRepoRoot / "tests" / "lint" /
                         "expected_fixtures.sarif"))
      << "regenerate with: vdlint --root . --sarif --out "
         "tests/lint/expected_fixtures.sarif tests/lint/fixtures";
}

TEST(OutputTest, HumanAndJsonRenderingsCoverEveryFinding) {
  const std::vector<Finding> findings = {
      {"src/a.cpp", 3, 7, "vdl-rand", Severity::kError, "msg"},
  };
  const RuleRegistry registry = RuleRegistry::default_rules();
  EXPECT_NE(render_human(findings).find("src/a.cpp:3:7: error: msg"),
            std::string::npos);
  const std::string json = render_json(findings, registry);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"vdl-rand\""), std::string::npos);
  EXPECT_EQ(render_human({}), "vdlint: clean\n");
}

// --- discovery and the self-scan gate ------------------------------------

TEST(CollectFilesTest, DefaultScanSkipsFixturesAndSortsDeterministically) {
  const std::vector<SourceFile> files = collect_files(kRepoRoot, {"tests"});
  ASSERT_FALSE(files.empty());
  for (std::size_t i = 0; i < files.size(); ++i) {
    EXPECT_EQ(files[i].display.find("lint/fixtures"), std::string::npos)
        << files[i].display;
    if (i > 0) EXPECT_LT(files[i - 1].display, files[i].display);
  }
}

TEST(SelfScanTest, RepositorySourcesLintClean) {
  const NameTables tables = load_name_tables(kRepoRoot);
  const RuleRegistry registry = RuleRegistry::default_rules();
  const std::vector<SourceFile> files =
      collect_files(kRepoRoot, {"src", "bench", "tests"});
  ASSERT_GT(files.size(), 50u);
  std::vector<Finding> findings;
  for (const SourceFile& file : files) {
    std::vector<Finding> f =
        analyze_file(file.path, file.display, tables, registry);
    findings.insert(findings.end(), f.begin(), f.end());
  }
  EXPECT_TRUE(findings.empty()) << render_human(findings);
}

}  // namespace
}  // namespace vdbench::lint
