// Determinism contract of the parallel experiment engine: every experiment
// artifact is bit-identical whatever the thread count, and identical across
// consecutive runs in the same process. Exported JSON is compared
// byte-for-byte — not approximately — because the engine's pre-split /
// indexed-write discipline guarantees the exact same floating-point
// operations in the exact same order.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/properties.h"
#include "report/export.h"
#include "stats/parallel.h"
#include "stats/rng.h"
#include "vdsim/campaign.h"
#include "vdsim/suite.h"

namespace vdbench {
namespace {

vdsim::SuiteConfig small_suite_config() {
  vdsim::SuiteConfig cfg;
  cfg.workload.num_services = 30;
  cfg.workload.prevalence = 0.12;
  cfg.runs = 8;
  cfg.bootstrap_replicates = 100;
  return cfg;
}

std::string suite_json_with_threads(std::size_t threads) {
  stats::set_global_threads(threads);
  const std::vector<vdsim::ToolProfile> tools = {
      vdsim::make_archetype_profile(vdsim::ToolArchetype::kStaticAnalyzer,
                                    0.8, "good"),
      vdsim::make_archetype_profile(vdsim::ToolArchetype::kFuzzer, 0.4,
                                    "bad")};
  const std::vector<core::MetricId> metrics = {core::MetricId::kFMeasure,
                                               core::MetricId::kMcc};
  stats::Rng rng(20150622);
  const vdsim::SuiteResult suite =
      run_suite(tools, metrics, small_suite_config(), rng);
  return report::suite_to_json(suite);
}

class DeterminismTest : public ::testing::Test {
 protected:
  // Leave the process-wide pool at its default size for other tests.
  void TearDown() override { stats::set_global_threads(0); }
};

TEST_F(DeterminismTest, SuiteJsonIsByteIdenticalAcrossThreadCounts) {
  const std::string serial = suite_json_with_threads(1);
  EXPECT_EQ(serial, suite_json_with_threads(2));
  EXPECT_EQ(serial, suite_json_with_threads(8));
}

TEST_F(DeterminismTest, SuiteJsonIsByteIdenticalAcrossConsecutiveRuns) {
  stats::set_global_threads(4);
  const std::string first = suite_json_with_threads(4);
  const std::string second = suite_json_with_threads(4);
  EXPECT_EQ(first, second);
}

TEST_F(DeterminismTest, AgreementMatrixIsThreadCountInvariant) {
  const auto agreement_with = [](std::size_t threads) {
    stats::set_global_threads(threads);
    const std::vector<core::MetricId> metrics = {
        core::MetricId::kRecall, core::MetricId::kPrecision,
        core::MetricId::kFMeasure, core::MetricId::kMcc};
    vdsim::WorkloadSpec spec;
    spec.num_services = 25;
    spec.prevalence = 0.12;
    stats::Rng rng(7);
    return metric_agreement(metrics, spec, 12, 5, vdsim::CostModel{}, rng);
  };
  const vdsim::AgreementMatrix serial = agreement_with(1);
  for (const std::size_t threads : {2u, 8u}) {
    const vdsim::AgreementMatrix parallel = agreement_with(threads);
    ASSERT_EQ(serial.metrics, parallel.metrics);
    for (std::size_t a = 0; a < serial.metrics.size(); ++a) {
      for (std::size_t b = 0; b < serial.metrics.size(); ++b) {
        // Bit-identical, including NaN placement: compare representations.
        const double lhs = serial.tau(a, b);
        const double rhs = parallel.tau(a, b);
        if (std::isnan(lhs)) {
          EXPECT_TRUE(std::isnan(rhs));
        } else {
          EXPECT_EQ(lhs, rhs) << "tau(" << a << "," << b << ") at "
                              << threads << " threads";
        }
        EXPECT_EQ(serial.valid_populations(a, b),
                  parallel.valid_populations(a, b));
      }
    }
  }
}

TEST_F(DeterminismTest, PropertyAssessmentIsThreadCountInvariant) {
  const auto assess_with = [](std::size_t threads) {
    stats::set_global_threads(threads);
    core::AssessmentConfig cfg;
    cfg.trials = 60;
    cfg.benchmark_items = 200;
    cfg.asymptotic_items = 100'000;
    stats::Rng rng(42);
    return core::PropertyAssessor(cfg).assess_all(rng);
  };
  const std::vector<core::MetricAssessment> serial = assess_with(1);
  for (const std::size_t threads : {2u, 8u}) {
    const std::vector<core::MetricAssessment> parallel = assess_with(threads);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].metric, parallel[i].metric);
      EXPECT_EQ(serial[i].scores, parallel[i].scores)
          << "metric " << core::metric_info(serial[i].metric).key << " at "
          << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace vdbench
