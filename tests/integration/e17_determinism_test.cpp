// E17 acceptance gates (see ISSUE/EXPERIMENTS): the real-analyzer
// experiment must be bit-identical across worker counts and cache
// temperature, MiniSAST must clear the 90% SQL-injection recall floor on
// the study corpus, and its misses/false alarms must be EXACTLY the
// documented blind spots — no more, no less.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <tuple>

#include "cli/driver.h"
#include "experiments.h"
#include "sast/adapter.h"
#include "study_common.h"
#include "vdsim/emit.h"
#include "vdsim/runner.h"

namespace vdbench {
namespace {

namespace fs = std::filesystem;

class E17DeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("vde17_test_" + std::string(::testing::UnitTest::GetInstance()
                                            ->current_test_info()
                                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  cli::DriverOptions options_for(const std::string& tag,
                                 std::size_t threads) {
    cli::DriverOptions options;
    options.experiments = "e17";
    options.quiet = true;
    options.cache_dir = (dir_ / ("cache_" + tag)).string();
    options.manifest_path = (dir_ / ("manifest_" + tag + ".json")).string();
    options.artifact_dir = dir_.string();
    options.json_out = (dir_ / (tag + ".json")).string();
    options.threads = threads;
    options.clock = [this] { return ++tick_; };
    return options;
  }

  static std::string slurp(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in), {}};
  }

  fs::path dir_;
  std::uint64_t tick_ = 0;
};

TEST_F(E17DeterminismTest, ByteIdenticalAcrossThreadsAndCacheTemperature) {
  const cli::ExperimentRegistry registry = bench::study_registry();

  cli::DriverOptions one = options_for("one", 1);
  const cli::RunOutcome cold = cli::run_driver(registry, one, std::cout);
  ASSERT_EQ(cold.exit_code, 0);
  ASSERT_EQ(cold.misses, 1u);

  // Warm replay from the cache: identical export bytes.
  one.json_out = (dir_ / "one_warm.json").string();
  const cli::RunOutcome warm = cli::run_driver(registry, one, std::cout);
  ASSERT_EQ(warm.exit_code, 0);
  EXPECT_EQ(warm.hits, 1u);
  EXPECT_EQ(slurp(dir_ / "one.json"), slurp(dir_ / "one_warm.json"));

  // Fresh 8-thread run in its own cache: identical key, entry and export.
  const cli::DriverOptions eight = options_for("eight", 8);
  const cli::RunOutcome wide = cli::run_driver(registry, eight, std::cout);
  ASSERT_EQ(wide.exit_code, 0);
  ASSERT_EQ(cold.experiments.size(), 1u);
  ASSERT_EQ(wide.experiments.size(), 1u);
  EXPECT_EQ(cold.experiments[0].key_hex, wide.experiments[0].key_hex);
  EXPECT_EQ(slurp(dir_ / "cache_one" / (cold.experiments[0].key_hex + ".vdc")),
            slurp(dir_ / "cache_eight" /
                  (wide.experiments[0].key_hex + ".vdc")));
  EXPECT_EQ(slurp(dir_ / "one.json"), slurp(dir_ / "eight.json"));
}

TEST(E17AcceptanceTest, SqliRecallClearsFloorAndBlindSpotsAreExact) {
  stats::Rng rng(bench::kStudySeed);
  const vdsim::Workload workload =
      vdsim::generate_workload(bench::e17_corpus_spec(), rng);
  const sast::Analyzer analyzer(sast::AnalyzerConfig{},
                                sast::RuleRegistry::default_rules());
  const vdsim::ToolReport report = sast::run_sast(workload, analyzer);
  const vdsim::BenchmarkResult result =
      vdsim::evaluate_report(report, workload, {10.0, 1.0});

  // Instance-exact: the detection set equals expected_detected() over the
  // ground truth — the blind spots are contracts, not tendencies.
  std::set<std::tuple<std::size_t, std::size_t, vdsim::VulnClass>> detected;
  for (const vdsim::Finding& f : report.findings)
    detected.insert({f.service_index, f.site_index, f.claimed_class});
  std::uint64_t expected_tp = 0;
  for (const vdsim::Service& service : workload.services()) {
    for (const vdsim::VulnInstance& v : service.vulns) {
      const bool expected = sast::expected_detected(v, analyzer.config());
      const bool actual =
          detected.contains({v.service_index, v.site_index, v.vuln_class});
      EXPECT_EQ(expected, actual)
          << "instance " << v.id << " class "
          << vdsim::vuln_class_name(v.vuln_class) << " difficulty "
          << v.difficulty;
      expected_tp += expected ? 1 : 0;
    }
  }
  EXPECT_EQ(result.context.cm.tp, expected_tp);

  // >=90% of seeded SQL injections are found (acceptance floor).
  const vdsim::ClassOutcome& sqli =
      result.by_class[vdsim::vuln_class_index(
          vdsim::VulnClass::kSqlInjection)];
  EXPECT_GE(sqli.tp + sqli.fn, 50u);  // corpus actually seeds the class
  EXPECT_GE(sqli.recall(), 0.90);

  // Every false alarm is the documented to_int bait — count them.
  std::uint64_t bait = 0;
  for (std::size_t s = 0; s < workload.services().size(); ++s) {
    const vdsim::Service& service = workload.services()[s];
    for (std::size_t site = 0; site < service.candidate_sites; ++site)
      if (workload.vuln_at(s, site) == nullptr &&
          vdsim::clean_variant(s, site) == vdsim::CleanVariant::kTypedTaint)
        ++bait;
  }
  EXPECT_EQ(result.context.cm.fp, bait);

  // Classes without rules have exactly zero recall.
  for (const vdsim::VulnClass c :
       {vdsim::VulnClass::kCommandInjection,
        vdsim::VulnClass::kIntegerOverflow,
        vdsim::VulnClass::kUseAfterFree}) {
    EXPECT_EQ(result.by_class[vdsim::vuln_class_index(c)].tp, 0u);
  }
}

}  // namespace
}  // namespace vdbench
