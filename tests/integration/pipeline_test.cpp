// End-to-end integration tests: run the full three-stage study (property
// assessment -> scenario effectiveness -> MCDA validation) at reduced trial
// counts and assert the DSN'15 paper's headline claims hold in vdbench.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/properties.h"
#include "core/scenario.h"
#include "core/selection.h"
#include "core/validation.h"
#include "vdsim/campaign.h"

namespace vdbench {
namespace {

using core::MetricId;

// Shared, lazily-built study state (expensive; built once per test run).
struct Study {
  std::vector<core::MetricAssessment> assessments;
  std::map<std::string, std::vector<core::EffectivenessResult>> effectiveness;
  std::map<std::string, core::ScenarioRecommendation> recommendations;

  static const Study& get() {
    static const Study study = [] {
      Study s;
      core::AssessmentConfig acfg;
      acfg.trials = 150;
      acfg.asymptotic_items = 200'000;
      const core::PropertyAssessor assessor(acfg);
      stats::Rng arng(1001);
      s.assessments = assessor.assess_all(arng);

      core::ScenarioAnalyzer::Config ecfg;
      ecfg.pair_trials = 900;
      const core::ScenarioAnalyzer analyzer(ecfg);
      const core::MetricSelector selector;
      const auto metrics = core::ranking_metrics();
      for (const core::Scenario& scenario : core::builtin_scenarios()) {
        stats::Rng erng(2000 + std::hash<std::string>{}(scenario.key) % 1000);
        s.effectiveness[scenario.key] =
            analyzer.analyze(scenario, metrics, erng);
        s.recommendations[scenario.key] = selector.recommend(
            scenario, s.assessments, s.effectiveness.at(scenario.key));
      }
      return s;
    }();
    return study;
  }
};

bool in_top_k(const core::ScenarioRecommendation& rec, MetricId id,
              std::size_t k) {
  return rec.rank_of(id) < k;
}

double fidelity(const std::vector<core::EffectivenessResult>& results,
                MetricId id) {
  const auto it = std::find_if(
      results.begin(), results.end(),
      [&](const core::EffectivenessResult& r) { return r.metric == id; });
  EXPECT_NE(it, results.end());
  return it->ranking_fidelity;
}

TEST(HeadlineTest, EveryScenarioProducesFullRanking) {
  const Study& s = Study::get();
  for (const core::Scenario& scenario : core::builtin_scenarios()) {
    const auto& rec = s.recommendations.at(scenario.key);
    EXPECT_EQ(rec.ranked.size(), core::ranking_metrics().size());
    EXPECT_GT(rec.best().overall, 0.5) << scenario.key;
  }
}

TEST(HeadlineTest, RecallFamilyWinsMissCriticalScenario) {
  // S1: missing a vulnerability is catastrophic. Recall-oriented and
  // cost-weighted metrics must outrank precision-oriented ones.
  const Study& s = Study::get();
  const auto& eff = s.effectiveness.at("s1_critical");
  EXPECT_GT(fidelity(eff, MetricId::kRecall),
            fidelity(eff, MetricId::kPrecision));
  EXPECT_GT(fidelity(eff, MetricId::kF2), fidelity(eff, MetricId::kFHalf));
}

TEST(HeadlineTest, PrecisionFamilyWinsBudgetScenario) {
  const Study& s = Study::get();
  const auto& eff = s.effectiveness.at("s2_budget");
  EXPECT_GT(fidelity(eff, MetricId::kPrecision),
            fidelity(eff, MetricId::kRecall));
  EXPECT_GT(fidelity(eff, MetricId::kFHalf), fidelity(eff, MetricId::kF2));
}

TEST(HeadlineTest, TraditionalMetricsAdequateOnlySomewhere) {
  // The abstract's first half: precision and recall ARE adequate in some
  // scenario (top-8 of 30 somewhere)...
  const Study& s = Study::get();
  bool precision_good = false, recall_good = false;
  for (const auto& [key, rec] : s.recommendations) {
    precision_good |= in_top_k(rec, MetricId::kPrecision, 8);
    recall_good |= in_top_k(rec, MetricId::kRecall, 8);
  }
  EXPECT_TRUE(recall_good);
  EXPECT_TRUE(precision_good);
  // ...but neither is adequate everywhere.
  bool precision_everywhere = true, recall_everywhere = true;
  for (const auto& [key, rec] : s.recommendations) {
    precision_everywhere &= in_top_k(rec, MetricId::kPrecision, 8);
    recall_everywhere &= in_top_k(rec, MetricId::kRecall, 8);
  }
  EXPECT_FALSE(precision_everywhere);
  EXPECT_FALSE(recall_everywhere);
}

TEST(HeadlineTest, SeldomUsedMetricsWinSomeScenario) {
  // The abstract's second half: some scenarios require alternative
  // metrics seldom used in benchmarking (MCC, informedness, markedness,
  // cost-based). At least one scenario's best metric is from that set.
  const Study& s = Study::get();
  const std::vector<MetricId> seldom_used = {
      MetricId::kMcc,        MetricId::kInformedness,
      MetricId::kMarkedness, MetricId::kNormalizedExpectedCost,
      MetricId::kWeightedBalancedAccuracy, MetricId::kGMean};
  bool wins_somewhere = false;
  for (const auto& [key, rec] : s.recommendations) {
    if (std::find(seldom_used.begin(), seldom_used.end(),
                  rec.best().metric) != seldom_used.end())
      wins_somewhere = true;
  }
  EXPECT_TRUE(wins_somewhere);
}

TEST(HeadlineTest, AccuracyMisleadsInRareScenario) {
  // Under extreme imbalance, accuracy must be clearly worse at ordering
  // tools than prevalence-robust alternatives.
  const Study& s = Study::get();
  const auto& eff = s.effectiveness.at("s4_rare");
  EXPECT_GT(fidelity(eff, MetricId::kWeightedBalancedAccuracy),
            fidelity(eff, MetricId::kAccuracy));
  const auto& rec = s.recommendations.at("s4_rare");
  EXPECT_GT(rec.rank_of(MetricId::kAccuracy), 5u);
}

TEST(HeadlineTest, DifferentScenariosPickDifferentMetrics) {
  // The central claim: the adequate metric depends on the scenario.
  const Study& s = Study::get();
  std::vector<MetricId> winners;
  for (const auto& [key, rec] : s.recommendations)
    winners.push_back(rec.best().metric);
  std::sort(winners.begin(), winners.end());
  const auto unique_count =
      std::unique(winners.begin(), winners.end()) - winners.begin();
  EXPECT_GE(unique_count, 2);
}

TEST(McdaIntegrationTest, ValidationAgreesAcrossScenarios) {
  // Stage 3: the expert-driven MCDA ranking must correlate positively
  // with the analytical selection in every scenario (the paper's
  // "validate the conclusions" step).
  const Study& s = Study::get();
  core::ValidationConfig vcfg;
  vcfg.judgment_noise = 0.10;
  vcfg.persona_spread = 0.10;
  const core::McdaValidator validator(vcfg);
  for (const core::Scenario& scenario : core::builtin_scenarios()) {
    stats::Rng rng(3000 + std::hash<std::string>{}(scenario.key) % 1000);
    const core::ValidationOutcome out = validator.validate(
        scenario, s.assessments, s.effectiveness.at(scenario.key), rng);
    EXPECT_GT(out.kendall_agreement, 0.2) << scenario.key;
    EXPECT_TRUE(out.ahp.acceptable()) << scenario.key;
  }
}

TEST(SimulatorIntegrationTest, CaseStudyRanksToolsSensibly) {
  // E5-style case study: on a balanced-cost workload the six builtin
  // tools must be ordered consistently with their designed quality by
  // robust metrics.
  vdsim::WorkloadSpec spec;
  spec.num_services = 300;
  spec.prevalence = 0.12;
  stats::Rng wrng(42);
  const vdsim::Workload workload = generate_workload(spec, wrng);
  stats::Rng rng(43);
  const auto results = run_benchmarks(vdsim::builtin_tools(), workload,
                                      vdsim::CostModel{}, rng);
  const auto order = vdsim::rank_tools_by_metric(results, MetricId::kMcc);
  // SA-Pro (index 0, quality .8) must beat SA-Community (index 1, .45).
  std::size_t pos_pro = 0, pos_community = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (results[order[i]].tool_name == "SA-Pro") pos_pro = i;
    if (results[order[i]].tool_name == "SA-Community") pos_community = i;
  }
  EXPECT_LT(pos_pro, pos_community);
}

TEST(SimulatorIntegrationTest, MetricChoiceChangesToolRanking) {
  // Two tools: sensitive-but-noisy vs quiet-but-blind. Recall and
  // precision must disagree on which is better — the concrete failure
  // mode that motivates scenario-aware metric selection.
  vdsim::WorkloadSpec spec;
  spec.num_services = 300;
  spec.prevalence = 0.10;
  stats::Rng wrng(44);
  const vdsim::Workload workload = generate_workload(spec, wrng);
  vdsim::ToolProfile sensitive = vdsim::make_archetype_profile(
      vdsim::ToolArchetype::kManualReview, 0.9, "sensitive");
  sensitive.sensitivity.fill(0.95);
  sensitive.fallout = 0.20;
  vdsim::ToolProfile quiet = vdsim::make_archetype_profile(
      vdsim::ToolArchetype::kManualReview, 0.9, "quiet");
  quiet.sensitivity.fill(0.45);
  quiet.fallout = 0.005;
  stats::Rng rng(45);
  const auto results = run_benchmarks({sensitive, quiet}, workload,
                                      vdsim::CostModel{}, rng);
  const auto by_recall =
      vdsim::rank_tools_by_metric(results, MetricId::kRecall);
  const auto by_precision =
      vdsim::rank_tools_by_metric(results, MetricId::kPrecision);
  EXPECT_EQ(by_recall.front(), 0u);
  EXPECT_EQ(by_precision.front(), 1u);
}

}  // namespace
}  // namespace vdbench
