// ThreadSanitizer coverage for the analyzer's per-service fan-out: run_sast
// parallelises emission+analysis over stats::ParallelExecutor, and its
// report must be identical for every worker count (task i writes slot i
// only; the merge is serial).
#include <gtest/gtest.h>

#include "sast/adapter.h"
#include "stats/parallel.h"
#include "vdsim/workload.h"

namespace vdbench {
namespace {

TEST(SastParallelTest, ReportIsIdenticalForAnyWorkerCount) {
  vdsim::WorkloadSpec spec;
  spec.num_services = 24;
  spec.prevalence = 0.12;
  stats::Rng rng(404);
  const vdsim::Workload workload = vdsim::generate_workload(spec, rng);
  const sast::Analyzer analyzer(sast::AnalyzerConfig{},
                                sast::RuleRegistry::default_rules());

  vdsim::ToolReport baseline;
  sast::SastRunStats baseline_stats;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    stats::set_global_threads(threads);
    sast::SastRunStats stats;
    const vdsim::ToolReport report =
        sast::run_sast(workload, analyzer, &stats);
    if (threads == 1u) {
      baseline = report;
      baseline_stats = stats;
      EXPECT_GT(report.findings.size(), 0u);
      continue;
    }
    EXPECT_EQ(stats.functions, baseline_stats.functions);
    EXPECT_EQ(stats.findings, baseline_stats.findings);
    EXPECT_EQ(stats.sink_flows, baseline_stats.sink_flows);
    ASSERT_EQ(report.findings.size(), baseline.findings.size());
    for (std::size_t i = 0; i < report.findings.size(); ++i) {
      EXPECT_EQ(report.findings[i].service_index,
                baseline.findings[i].service_index);
      EXPECT_EQ(report.findings[i].site_index,
                baseline.findings[i].site_index);
      EXPECT_EQ(report.findings[i].claimed_class,
                baseline.findings[i].claimed_class);
      EXPECT_DOUBLE_EQ(report.findings[i].confidence,
                       baseline.findings[i].confidence);
    }
  }
  stats::set_global_threads(0);  // restore the default executor
}

}  // namespace
}  // namespace vdbench
