// Driver-level drills for the streaming pipeline (E18): injected
// stream.produce / stream.consume faults must be retried by the supervisor
// and recover to a JSON export byte-identical to the clean run; a recorded
// report log must replay byte-identically at any thread count; a corrupt
// replay log must fail the experiment loudly, never yield a short stream.
// Lives in the parallel test binary so the producer thread + watchdog
// machinery runs under the tsan ctest label.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "cli/driver.h"
#include "experiments.h"
#include "fault/injector.h"

namespace vdbench::cli {
namespace {

namespace fs = std::filesystem;

class StreamResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("vdstream_resilience_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    registry_ = bench::study_registry();
  }
  void TearDown() override {
    fault::Injector::global().disarm();
    fs::remove_all(dir_);
  }

  DriverOptions drill_options(const std::string& tag, std::size_t threads) {
    DriverOptions options;
    options.experiments = "e18";
    options.threads = threads;
    options.cache_dir = (dir_ / ("cache_" + tag)).string();
    options.json_out = (dir_ / (tag + ".json")).string();
    options.manifest_path.clear();
    options.artifact_dir = (dir_ / ("artifacts_" + tag)).string();
    options.quiet = true;
    options.study_seed = 42;
    options.retries = 2;
    options.retry_backoff_ms = 0;
    options.clock = [this] { return ++tick_; };
    return options;
  }

  static std::string slurp(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in), {}};
  }

  fs::path dir_;
  ExperimentRegistry registry_;
  std::uint64_t tick_ = 0;
};

TEST_F(StreamResilienceTest, StreamFaultsRecoverByteIdenticallyUnderRetry) {
  const struct {
    const char* tag;
    const char* spec;
  } kDrills[] = {
      {"produce_throw", "stream.produce=throw@5:1"},
      {"produce_enospc", "stream.produce=io_error@2:1"},
      {"consume_throw", "stream.consume=throw@3:1"},
      {"consume_corrupt", "stream.consume=corrupt@7:1"},
  };
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const std::string t = "t" + std::to_string(threads);
    const DriverOptions clean = drill_options("clean_" + t, threads);
    ASSERT_EQ(run_driver(registry_, clean, std::cout).exit_code, kExitOk);
    const std::string clean_export = slurp(clean.json_out);
    ASSERT_FALSE(clean_export.empty());

    for (const auto& drill : kDrills) {
      const std::string tag = std::string(drill.tag) + "_" + t;
      DriverOptions options = drill_options(tag, threads);
      fault::Injector::global().arm(drill.spec);
      std::ostringstream out;
      const RunOutcome run = run_driver(registry_, options, out);
      fault::Injector::global().disarm();
      ASSERT_EQ(run.exit_code, kExitOk)
          << drill.spec << " threads=" << threads << "\n"
          << out.str();
      ASSERT_EQ(run.experiments.size(), 1u);
      ASSERT_GE(run.experiments[0].attempts.size(), 2u) << drill.spec;
      EXPECT_EQ(run.experiments[0].attempts[0].result, "injected_fault");
      EXPECT_EQ(run.experiments[0].attempts.back().result, "ok");
      EXPECT_EQ(slurp(options.json_out), clean_export)
          << drill.spec << " threads=" << threads
          << ": recovered export differs from the clean run";
    }
  }
}

TEST_F(StreamResilienceTest, StallInProducerIsWatchdogCancelledAndRetried) {
  // A stream.produce timeout stalls the producer thread; the consumer
  // blocks on the queue, the watchdog fires, and both sides unwind through
  // the cooperative cancellation token. The retry then runs clean and the
  // export matches the unfaulted run.
  const DriverOptions clean = drill_options("clean", 4);
  ASSERT_EQ(run_driver(registry_, clean, std::cout).exit_code, kExitOk);

  DriverOptions options = drill_options("stall", 4);
  options.timeout_sec = 0.5;
  options.retries = 1;
  fault::Injector::global().arm("stream.produce=timeout@4:1");
  std::ostringstream out;
  const RunOutcome run = run_driver(registry_, options, out);
  fault::Injector::global().disarm();
  ASSERT_EQ(run.exit_code, kExitOk) << out.str();
  ASSERT_EQ(run.experiments.size(), 1u);
  const ExperimentOutcome& e18 = run.experiments[0];
  ASSERT_EQ(e18.attempts.size(), 2u);
  EXPECT_EQ(e18.attempts[0].result, "timeout");
  EXPECT_GE(e18.attempts[0].seconds, 0.5);  // held until the watchdog
  EXPECT_EQ(e18.attempts[1].result, "ok");
  EXPECT_EQ(slurp(options.json_out), slurp(clean.json_out));
}

TEST_F(StreamResilienceTest, RecordedLogReplaysByteIdenticallyAtAnyThreads) {
  // Record once, replay at several thread counts: every export must match
  // the recording run byte for byte — the CI determinism matrix in
  // miniature.
  DriverOptions record = drill_options("record", 1);
  record.record_log = (dir_ / "e18.vdrlog").string();
  std::ostringstream record_out;
  ASSERT_EQ(run_driver(registry_, record, record_out).exit_code, kExitOk)
      << record_out.str();
  const std::string recorded_export = slurp(record.json_out);
  ASSERT_FALSE(recorded_export.empty());
  ASSERT_GT(fs::file_size(record.record_log), 16u);  // header + frames

  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    DriverOptions replay =
        drill_options("replay_t" + std::to_string(threads), threads);
    replay.replay_log = record.record_log;
    std::ostringstream out;
    ASSERT_EQ(run_driver(registry_, replay, out).exit_code, kExitOk)
        << out.str();
    EXPECT_EQ(slurp(replay.json_out), recorded_export)
        << "replay at threads=" << threads
        << " diverged from the recording run";
  }
}

TEST_F(StreamResilienceTest, CorruptReplayLogFailsLoudlyNotShort) {
  DriverOptions record = drill_options("record", 1);
  record.record_log = (dir_ / "e18.vdrlog").string();
  ASSERT_EQ(run_driver(registry_, record, std::cout).exit_code, kExitOk);

  // Chop the tail: a silent reader would fold a short stream and export
  // plausible-but-wrong numbers. The driver must fail the experiment with
  // the typed corruption message instead.
  const std::string bytes = slurp(record.record_log);
  const fs::path torn = dir_ / "torn.vdrlog";
  {
    std::ofstream out(torn, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  DriverOptions replay = drill_options("replay_torn", 1);
  replay.replay_log = torn.string();
  replay.retries = 0;
  std::ostringstream out;
  const RunOutcome run = run_driver(registry_, replay, out);
  EXPECT_NE(run.exit_code, kExitOk);
  EXPECT_NE(out.str().find("report log corrupt"), std::string::npos)
      << out.str();
}

}  // namespace
}  // namespace vdbench::cli
