// End-to-end resilience drills: every injected fault class must recover to
// a JSON export byte-identical to the uninjected run, at any thread count —
// the acceptance bar for the fault-injection harness. Lives in the parallel
// test binary so the tsan ctest label exercises the watchdog/cancellation
// machinery under the race detector.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "cli/driver.h"
#include "experiments.h"
#include "fault/injector.h"

namespace vdbench::cli {
namespace {

namespace fs = std::filesystem;

class ResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("vdresilience_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    registry_ = bench::study_registry();
  }
  void TearDown() override {
    fault::Injector::global().disarm();
    fs::remove_all(dir_);
  }

  // e1 (cacheable, instant) + probe (non-cacheable 256-task parallel
  // checksum): between them they cross every fault point.
  DriverOptions drill_options(const std::string& tag, std::size_t threads) {
    DriverOptions options;
    options.experiments = "e1,probe";
    options.threads = threads;
    options.cache_dir = (dir_ / ("cache_" + tag)).string();
    options.json_out = (dir_ / (tag + ".json")).string();
    options.manifest_path.clear();
    options.artifact_dir = dir_.string();
    options.quiet = true;
    options.study_seed = 42;
    options.retries = 2;
    options.retry_backoff_ms = 0;
    options.clock = [this] { return ++tick_; };
    return options;
  }

  static std::string slurp(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in), {}};
  }

  fs::path dir_;
  ExperimentRegistry registry_;
  std::uint64_t tick_ = 0;
};

TEST_F(ResilienceTest, EveryFaultClassRecoversByteIdenticallyAtAnyThreadCount) {
  const struct {
    const char* tag;
    const char* spec;
    bool needs_warm_cache;  // read faults need an entry to read
  } kDrills[] = {
      {"write_enospc", "cache.write=io_error@e1:1", false},
      {"write_corrupt", "cache.write=corrupt@e1:1", false},
      {"read_throw", "cache.read=throw@e1:1", true},
      {"read_truncate", "cache.read=truncate@e1:1", true},
      {"body_throw", "experiment.body=throw@probe:1", false},
      {"task_throw", "executor.task=throw@17:1", false},
  };
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const std::string t = "t" + std::to_string(threads);
    const DriverOptions clean = drill_options("clean_" + t, threads);
    ASSERT_EQ(run_driver(registry_, clean, std::cout).exit_code, kExitOk);
    const std::string clean_export = slurp(clean.json_out);
    ASSERT_FALSE(clean_export.empty());

    for (const auto& drill : kDrills) {
      const std::string tag = std::string(drill.tag) + "_" + t;
      DriverOptions options = drill_options(tag, threads);
      if (drill.needs_warm_cache) {
        DriverOptions warm = options;
        warm.json_out.clear();
        ASSERT_EQ(run_driver(registry_, warm, std::cout).exit_code, kExitOk);
      }
      fault::Injector::global().arm(drill.spec);
      std::ostringstream out;
      const RunOutcome run = run_driver(registry_, options, out);
      fault::Injector::global().disarm();
      EXPECT_EQ(run.exit_code, kExitOk)
          << drill.spec << " threads=" << threads << "\n"
          << out.str();
      EXPECT_EQ(slurp(options.json_out), clean_export)
          << drill.spec << " threads=" << threads
          << ": recovered export differs from the clean run";
    }
  }
}

TEST_F(ResilienceTest, InjectedTimeoutIsCancelledClassifiedAndRetried) {
  DriverOptions options = drill_options("timeout", 4);
  options.timeout_sec = 0.5;
  options.retries = 1;
  const DriverOptions clean = drill_options("clean", 4);
  ASSERT_EQ(run_driver(registry_, clean, std::cout).exit_code, kExitOk);

  fault::Injector::global().arm("experiment.body=timeout@probe:1");
  std::ostringstream out;
  const RunOutcome run = run_driver(registry_, options, out);
  fault::Injector::global().disarm();
  ASSERT_EQ(run.exit_code, kExitOk) << out.str();
  ASSERT_EQ(run.experiments.size(), 2u);
  const ExperimentOutcome& probe = run.experiments[1];
  ASSERT_EQ(probe.attempts.size(), 2u);
  EXPECT_EQ(probe.attempts[0].result, "timeout");
  EXPECT_GE(probe.attempts[0].seconds, 0.5);  // held until the watchdog
  EXPECT_EQ(probe.attempts[1].result, "ok");
  EXPECT_EQ(slurp(options.json_out), slurp(clean.json_out));
}

TEST_F(ResilienceTest, KilledStudyResumesToCompletionWithFullHistory) {
  // Baseline: the clean study export.
  const DriverOptions clean = drill_options("clean", 4);
  ASSERT_EQ(run_driver(registry_, clean, std::cout).exit_code, kExitOk);

  // "Kill" the study: probe dies with no retries; the crash-safe manifest
  // keeps the record of what finished.
  DriverOptions first = drill_options("first", 4);
  first.retries = 0;
  first.manifest_path = (dir_ / "manifest.json").string();
  first.json_out.clear();
  fault::Injector::global().arm("experiment.body=throw@probe:1");
  std::ostringstream first_out;
  const RunOutcome killed = run_driver(registry_, first, first_out);
  fault::Injector::global().disarm();
  ASSERT_EQ(killed.exit_code, kExitPartial) << first_out.str();

  // Resume: e1 replays from the first run's cache, probe recomputes.
  DriverOptions second = drill_options("second", 4);
  second.cache_dir = first.cache_dir;
  second.resume_path = first.manifest_path;
  second.manifest_path = (dir_ / "manifest2.json").string();
  std::ostringstream second_out;
  const RunOutcome resumed = run_driver(registry_, second, second_out);
  ASSERT_EQ(resumed.exit_code, kExitOk) << second_out.str();
  ASSERT_EQ(resumed.experiments.size(), 2u);
  EXPECT_EQ(resumed.experiments[0].source,
            ExperimentOutcome::Source::kCacheHit);
  EXPECT_TRUE(resumed.experiments[0].resumed);

  // Both runs' attempts, each with its own timing, survive in the final
  // manifest: the injected failure (flagged prior) and this run's success.
  const ExperimentOutcome& probe = resumed.experiments[1];
  ASSERT_EQ(probe.attempts.size(), 2u);
  EXPECT_TRUE(probe.attempts[0].prior);
  EXPECT_EQ(probe.attempts[0].result, "injected_fault");
  EXPECT_GE(probe.attempts[0].seconds, 0.0);
  EXPECT_FALSE(probe.attempts[1].prior);
  EXPECT_EQ(probe.attempts[1].result, "ok");
  const std::string manifest = slurp(dir_ / "manifest2.json");
  EXPECT_NE(manifest.find("\"prior\":true"), std::string::npos);
  EXPECT_NE(manifest.find("\"result\":\"injected_fault\""),
            std::string::npos);
  EXPECT_NE(manifest.find("\"complete\":true"), std::string::npos);

  // And the resumed study's export is byte-identical to the clean run.
  EXPECT_EQ(slurp(second.json_out), slurp(clean.json_out));
}

}  // namespace
}  // namespace vdbench::cli
