#include "net/protocol.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>

namespace vdbench::net {
namespace {

TEST(StudyRequestTest, RoundTripsEveryField) {
  StudyRequest request;
  request.experiments = "e2,e6,e13";
  request.threads = 3;
  request.study_seed = 20150622;
  request.use_cache = false;
  request.refresh = true;
  request.quiet = false;
  request.retries = 2;
  request.timeout_sec = 1.5;
  request.want_manifest = true;

  const std::optional<StudyRequest> decoded =
      decode_request(encode_request(request));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->experiments, "e2,e6,e13");
  EXPECT_EQ(decoded->threads, 3u);
  EXPECT_EQ(decoded->study_seed, 20150622u);
  EXPECT_FALSE(decoded->use_cache);
  EXPECT_TRUE(decoded->refresh);
  EXPECT_FALSE(decoded->quiet);
  EXPECT_EQ(decoded->retries, 2u);
  EXPECT_DOUBLE_EQ(decoded->timeout_sec, 1.5);
  EXPECT_TRUE(decoded->want_manifest);
}

TEST(StudyRequestTest, RoundTripsSeedsAboveDoublePrecision) {
  // Seeds ride the wire as decimal strings: a JSON number decodes as a
  // double and silently alters integers above 2^53.
  StudyRequest request;
  request.study_seed = 18446744073709551615ull;  // UINT64_MAX
  std::optional<StudyRequest> decoded =
      decode_request(encode_request(request));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->study_seed, 18446744073709551615ull);

  request.study_seed = (1ull << 53) + 1;  // first double-unrepresentable
  decoded = decode_request(encode_request(request));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->study_seed, (1ull << 53) + 1);
}

TEST(StudyRequestTest, AcceptsSmallNumericSeedsForCompatibility) {
  const std::optional<StudyRequest> decoded =
      decode_request("{\"study_seed\": 42}");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->study_seed, 42u);
}

TEST(StudyRequestTest, AbsentFieldsKeepDefaults) {
  const std::optional<StudyRequest> decoded = decode_request("{}");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->experiments, "all");
  EXPECT_EQ(decoded->threads, 0u);
  EXPECT_EQ(decoded->study_seed, 0u);
  EXPECT_TRUE(decoded->use_cache);
  EXPECT_FALSE(decoded->refresh);
  EXPECT_TRUE(decoded->quiet);
  EXPECT_EQ(decoded->retries, 0u);
  EXPECT_DOUBLE_EQ(decoded->timeout_sec, 0.0);
  EXPECT_FALSE(decoded->want_manifest);
}

TEST(StudyRequestTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(decode_request("").has_value());
  EXPECT_FALSE(decode_request("not json").has_value());
  EXPECT_FALSE(decode_request("[]").has_value());
  EXPECT_FALSE(decode_request("{\"experiments\": 7}").has_value());
  EXPECT_FALSE(decode_request("{\"experiments\": \"\"}").has_value());
  EXPECT_FALSE(decode_request("{\"threads\": -1}").has_value());
  EXPECT_FALSE(decode_request("{\"threads\": 1.5}").has_value());
  EXPECT_FALSE(decode_request("{\"use_cache\": \"yes\"}").has_value());
  EXPECT_FALSE(decode_request("{\"timeout_sec\": -2}").has_value());
  EXPECT_FALSE(decode_request("{\"retries\": \"three\"}").has_value());
  EXPECT_FALSE(decode_request("{\"study_seed\": \"\"}").has_value());
  EXPECT_FALSE(decode_request("{\"study_seed\": \"12x\"}").has_value());
  // One past UINT64_MAX must be rejected, not wrapped.
  EXPECT_FALSE(
      decode_request("{\"study_seed\": \"18446744073709551616\"}")
          .has_value());
}

TEST(StudyStatusTest, RoundTripsStatusAndError) {
  StudyStatus status;
  status.status = "partial";
  status.exit_code = 3;
  status.error = "e13 failed after retries";
  const std::optional<StudyStatus> decoded =
      decode_status(encode_status(status));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->status, "partial");
  EXPECT_EQ(decoded->exit_code, 3);
  EXPECT_EQ(decoded->error, "e13 failed after retries");
}

TEST(StudyStatusTest, SessionExitCodesExtendTheDriverTaxonomy) {
  // 0–3 belong to the driver (cli/driver.h); the session codes must not
  // collide with them.
  EXPECT_EQ(kExitBusy, 4);
  EXPECT_EQ(kExitTransport, 5);
}

TEST(StudyStatusTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(decode_status("").has_value());
  EXPECT_FALSE(decode_status("[]").has_value());
  EXPECT_FALSE(decode_status("{\"status\": 1}").has_value());
  EXPECT_FALSE(decode_status("{\"status\": \"\"}").has_value());
  EXPECT_FALSE(decode_status("{\"exit_code\": 999}").has_value());
  EXPECT_FALSE(decode_status("{\"exit_code\": \"ok\"}").has_value());
}

}  // namespace
}  // namespace vdbench::net
