// Deadline and peer-liveness behaviour of the raw socket layer. The
// load-bearing property is that no call can outlast its deadline: every
// fd is O_NONBLOCK, so a peer that stops reading (without closing) stalls
// the sender at poll() — where the deadline fires — never inside send().
#include "net/socket.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <vector>

namespace vdbench::net {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

class SocketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (fs::temp_directory_path() /
             ("vdsocket_test_" +
              std::string(::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name()) +
              ".sock"))
                .string();
    fs::remove(path_);
  }

  void TearDown() override { fs::remove(path_); }

  std::string path_;
};

TEST_F(SocketTest, WriteToAStalledPeerExpiresAtTheDeadlineNotInSend) {
  Listener listener(path_);
  Socket client = connect_unix(path_);
  std::optional<Socket> server = listener.accept_one();
  ASSERT_TRUE(server.has_value());

  // The peer never reads, so the kernel buffer fills and write_all must
  // ride the poll() deadline out. A blocking send here would hang the
  // test forever instead of throwing.
  const std::vector<char> block(1 << 20, 'x');
  const auto start = std::chrono::steady_clock::now();
  const Deadline deadline = start + 200ms;
  EXPECT_THROW(
      {
        for (int i = 0; i < 64; ++i)
          client.write_all(block.data(), block.size(), deadline);
      },
      TransportError);
  EXPECT_LT(std::chrono::steady_clock::now() - start, 5s);
}

TEST_F(SocketTest, ReadFromASilentPeerExpiresAtTheDeadline) {
  Listener listener(path_);
  Socket client = connect_unix(path_);
  std::optional<Socket> server = listener.accept_one();
  ASSERT_TRUE(server.has_value());

  char byte;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(client.read_exact(&byte, 1, start + 100ms), TransportError);
  EXPECT_LT(std::chrono::steady_clock::now() - start, 5s);
}

TEST_F(SocketTest, PeerClosedSeesBothOrderlyShutdownAndReset) {
  Listener listener(path_);
  Socket client = connect_unix(path_);
  std::optional<Socket> server = listener.accept_one();
  ASSERT_TRUE(server.has_value());

  EXPECT_FALSE(client.peer_closed());

  // Close with unread data in flight: depending on the kernel this
  // surfaces as EOF or ECONNRESET — both must read as "peer gone" (a
  // reset used to be misclassified as alive because recv returns -1).
  const char probe = 'p';
  client.write_all(&probe, 1, std::chrono::steady_clock::now() + 1s);
  server->close();
  EXPECT_TRUE(client.peer_closed());
}

}  // namespace
}  // namespace vdbench::net
