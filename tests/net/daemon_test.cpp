// End-to-end tests for the vdbench daemon (net/server.h + net/client.h):
// byte-identity against a local driver run, shared-cache dedup across
// sessions, admission control, per-connection deadlines, dead-client
// detection, graceful drain, and injected net.* faults. Every client
// request uses threads=0 so no session reconfigures the process-wide
// thread pool out from under another test.
#include "net/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "cli/driver.h"
#include "cli/experiment.h"
#include "fault/injector.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "obs/registry.h"
#include "report/json_reader.h"
#include "stats/parallel.h"

namespace vdbench::net {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

// Shared hooks the toy experiments report through. "gate" blocks until
// g_gate is released (honouring cancellation), so tests can hold a
// session in-flight; "cnt" counts actual computations, so tests can prove
// a replay never re-ran the body.
std::atomic<bool> g_gate{false};
std::atomic<bool> g_gate_entered{false};
std::atomic<int> g_count_runs{0};

cli::ExperimentRegistry daemon_registry() {
  cli::ExperimentRegistry registry;
  registry.add({"t1", "writes a line", "toy{n=1}", true,
                [](cli::ExperimentContext& ctx) {
                  ctx.out << "t1 report line\n";
                }});
  registry.add({"cnt", "counts computations", "toy{n=2}", true,
                [](cli::ExperimentContext& ctx) {
                  g_count_runs.fetch_add(1);
                  ctx.out << "cnt report line\n";
                }});
  registry.add({"gate", "blocks until released", "toy{n=3}", false,
                [](cli::ExperimentContext& ctx) {
                  g_gate_entered.store(true);
                  while (!g_gate.load()) {
                    if (ctx.cancellation_requested()) throw stats::Cancelled();
                    std::this_thread::sleep_for(1ms);
                  }
                  ctx.out << "gate opened\n";
                }});
  return registry;
}

class DaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::Injector::global().disarm();
    g_gate.store(false);
    g_gate_entered.store(false);
    g_count_runs.store(0);
    dir_ = fs::temp_directory_path() /
           ("vddaemon_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    options_.socket_path = (dir_ / "d.sock").string();
    options_.cache_dir = (dir_ / "cache").string();
    options_.work_dir = (dir_ / "work").string();
    options_.study_seed = 7;
    base_ = obs::Registry::global().snapshot();
  }

  void TearDown() override {
    if (server_ != nullptr) {
      g_gate.store(true);  // release any straggling gated study
      (void)stop_server();
    }
    fault::Injector::global().disarm();
    fs::remove_all(dir_);
  }

  void start_server() {
    server_ = std::make_unique<Server>(registry_, options_);
    server_thread_ = std::thread([this] { rc_ = server_->run(log_); });
  }

  /// Drain, join, and return the daemon's exit code (0 = clean drain).
  [[nodiscard]] int stop_server() {
    server_->request_drain();
    server_thread_.join();
    server_.reset();
    return rc_;
  }

  [[nodiscard]] ClientOutcome run_client(const std::string& experiments,
                                         bool want_manifest = false) {
    ClientOptions options;
    options.socket_path = options_.socket_path;
    options.request.experiments = experiments;
    options.request.threads = 0;
    options.request.want_manifest = want_manifest;
    options.deadline_sec = 30.0;
    std::ostringstream progress;
    return run_study(options, progress);
  }

  /// Counter delta since SetUp (the obs registry is process-global).
  [[nodiscard]] std::uint64_t delta(obs::Counter counter) const {
    return obs::Registry::global().snapshot().since(base_)[counter];
  }

  [[nodiscard]] static bool wait_until(const std::function<bool()>& ready,
                                       std::chrono::seconds budget = 10s) {
    const auto stop = std::chrono::steady_clock::now() + budget;
    while (std::chrono::steady_clock::now() < stop) {
      if (ready()) return true;
      std::this_thread::sleep_for(5ms);
    }
    return ready();
  }

  static std::string slurp(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in), {}};
  }

  static void write_raw_frame(Socket& socket, FrameType type,
                              const std::string& payload) {
    write_frame(
        [&](const char* src, std::size_t n) {
          socket.write_all(src, n, no_deadline());
        },
        type, payload, kRoleClient);
  }

  static Frame read_raw_frame(Socket& socket) {
    const Deadline deadline = std::chrono::steady_clock::now() + 10s;
    return read_frame(
        [&](char* dst, std::size_t n) {
          socket.read_exact(dst, n, deadline);
        },
        kRoleClient);
  }

  fs::path dir_;
  cli::ExperimentRegistry registry_ = daemon_registry();
  ServerOptions options_;
  std::unique_ptr<Server> server_;
  std::thread server_thread_;
  std::ostringstream log_;
  int rc_ = -1;
  obs::CounterSnapshot base_;
};

TEST_F(DaemonTest, ColdAndWarmClientExportsMatchALocalDriverRun) {
  // Local baseline first (its own cache, so the daemon's stays cold). It
  // must finish before any daemon session starts: the process-wide
  // cancellation slot makes concurrent driver runs in one process unsound.
  cli::DriverOptions baseline;
  baseline.experiments = "all";
  baseline.cache_dir = (dir_ / "baseline_cache").string();
  baseline.manifest_path = (dir_ / "baseline_manifest.json").string();
  baseline.artifact_dir = dir_.string();
  baseline.json_out = (dir_ / "baseline.json").string();
  baseline.study_seed = 7;
  baseline.quiet = true;
  std::ostringstream out;
  ASSERT_EQ(cli::run_driver(registry_, baseline, out).exit_code, 0);
  const std::string expected = slurp(dir_ / "baseline.json");
  ASSERT_FALSE(expected.empty());
  g_count_runs.store(0);

  start_server();
  const ClientOutcome cold = run_client("all", /*want_manifest=*/true);
  EXPECT_EQ(cold.status.status, "ok");
  EXPECT_EQ(cold.status.exit_code, 0);
  EXPECT_EQ(cold.export_json, expected);  // byte-identical, cold
  ASSERT_FALSE(cold.manifest_json.empty());
  EXPECT_TRUE(report::parse_json(cold.manifest_json).has_value());

  const ClientOutcome warm = run_client("all");
  EXPECT_EQ(warm.status.exit_code, 0);
  EXPECT_EQ(warm.export_json, expected);  // byte-identical, warm
  EXPECT_EQ(g_count_runs.load(), 1);      // warm replayed from the cache
  EXPECT_EQ(stop_server(), 0);
}

TEST_F(DaemonTest, ConcurrentSessionsForOneStudyComputeItOnce) {
  start_server();
  ClientOutcome first;
  ClientOutcome second;
  std::thread one([&] { first = run_client("cnt"); });
  std::thread two([&] { second = run_client("cnt"); });
  one.join();
  two.join();
  EXPECT_EQ(first.status.exit_code, 0);
  EXPECT_EQ(second.status.exit_code, 0);
  // One computation, two byte-identical results, one cache entry.
  EXPECT_EQ(g_count_runs.load(), 1);
  ASSERT_FALSE(first.export_json.empty());
  EXPECT_EQ(first.export_json, second.export_json);
  std::size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(options_.cache_dir))
    if (entry.path().extension() == ".vdc") ++entries;
  EXPECT_EQ(entries, 1u);
  EXPECT_EQ(stop_server(), 0);
}

TEST_F(DaemonTest, AdmissionBeyondTheQueueBoundIsRejectedBusy) {
  options_.max_queue = 1;
  start_server();
  ClientOutcome active;
  ClientOutcome queued;
  std::thread one([&] { active = run_client("gate"); });
  ASSERT_TRUE(wait_until([] { return g_gate_entered.load(); }));
  std::thread two([&] { queued = run_client("gate"); });
  ASSERT_TRUE(wait_until(
      [&] { return delta(obs::Counter::kNetSessionsAccepted) >= 2; }));

  // One active + one queued fills the envelope; the third is told so.
  const ClientOutcome refused = run_client("t1");
  EXPECT_EQ(refused.status.status, "busy");
  EXPECT_EQ(refused.status.exit_code, kExitBusy);
  EXPECT_GE(delta(obs::Counter::kNetSessionsRejected), 1u);

  g_gate.store(true);
  one.join();
  two.join();
  EXPECT_EQ(active.status.exit_code, 0);
  EXPECT_EQ(queued.status.exit_code, 0);
  EXPECT_EQ(stop_server(), 0);
}

TEST_F(DaemonTest, SessionDeadlineCancelsOnlyItsOwnStudy) {
  options_.deadline_sec = 0.5;
  start_server();
  const ClientOutcome overran = run_client("gate");  // never released
  EXPECT_EQ(overran.status.status, "deadline");
  EXPECT_EQ(overran.status.exit_code, kExitTransport);
  EXPECT_GE(delta(obs::Counter::kNetSessionsCancelled), 1u);

  // The daemon is unharmed: the next session runs to a clean status.
  const ClientOutcome next = run_client("t1");
  EXPECT_EQ(next.status.status, "ok");
  EXPECT_EQ(next.status.exit_code, 0);
  EXPECT_EQ(stop_server(), 0);
}

TEST_F(DaemonTest, VanishedClientIsDetectedAndCancelled) {
  start_server();
  {
    Socket raw = connect_unix(options_.socket_path);
    StudyRequest request;
    request.experiments = "gate";
    write_raw_frame(raw, FrameType::kRequest, encode_request(request));
    ASSERT_TRUE(wait_until([] { return g_gate_entered.load(); }));
  }  // scope exit closes the socket: the client vanishes mid-study
  ASSERT_TRUE(wait_until(
      [&] { return delta(obs::Counter::kNetSessionsCancelled) >= 1; }));
  const ClientOutcome next = run_client("t1");
  EXPECT_EQ(next.status.exit_code, 0);
  EXPECT_EQ(stop_server(), 0);
}

TEST_F(DaemonTest, DrainAnswersDrainingAndLeavesParseableManifests) {
  options_.drain_sec = 0.2;
  start_server();
  ClientOutcome inflight;
  std::thread one([&] { inflight = run_client("gate"); });
  ASSERT_TRUE(wait_until([] { return g_gate_entered.load(); }));

  EXPECT_EQ(stop_server(), 0);  // SIGTERM path: drain grace, cancel, exit 0
  one.join();
  EXPECT_EQ(inflight.status.status, "draining");
  EXPECT_EQ(inflight.status.exit_code, kExitBusy);

  // The cancelled session still left an atomically-written, parseable
  // manifest — a daemon killed at any instant never tears its records.
  std::size_t manifests = 0;
  for (const auto& entry : fs::directory_iterator(options_.work_dir)) {
    if (entry.path().filename().string().find(".manifest.json") ==
        std::string::npos)
      continue;
    ++manifests;
    const std::string body = slurp(entry.path());
    ASSERT_FALSE(body.empty());
    EXPECT_TRUE(report::parse_json(body).has_value()) << entry.path();
  }
  EXPECT_GE(manifests, 1u);
  EXPECT_NE(log_.str().find("drain summary"), std::string::npos);
}

TEST_F(DaemonTest, InjectedNetFaultsDegradeToStatusesNotCrashes) {
  start_server();
  const char* specs[] = {
      "net.read=io_error@server:1",
      "net.frame=corrupt@server:1",
      "net.write=io_error@server:1",
      "net.accept=io_error@1",
  };
  for (const char* spec : specs) {
    fault::Injector::global().arm(spec);
    const ClientOutcome hurt = run_client("t1");
    EXPECT_NE(hurt.status.exit_code, 0) << spec;
    fault::Injector::global().disarm();
    // The daemon survives every leg and serves the next session cleanly.
    const ClientOutcome clean = run_client("t1");
    EXPECT_EQ(clean.status.status, "ok") << spec;
    EXPECT_EQ(clean.status.exit_code, 0) << spec;
  }
  EXPECT_EQ(stop_server(), 0);
}

TEST_F(DaemonTest, MalformedRequestsGetAUsageStatus) {
  start_server();
  {
    Socket raw = connect_unix(options_.socket_path);
    write_raw_frame(raw, FrameType::kRequest, "definitely not json");
    const Frame frame = read_raw_frame(raw);
    ASSERT_EQ(frame.type, FrameType::kStatus);
    const std::optional<StudyStatus> status = decode_status(frame.payload);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->status, "usage");
    EXPECT_EQ(status->exit_code, cli::kExitUsage);
  }
  {
    // A well-formed frame of the wrong type is equally a usage error.
    Socket raw = connect_unix(options_.socket_path);
    write_raw_frame(raw, FrameType::kProgress, "{}");
    const Frame frame = read_raw_frame(raw);
    ASSERT_EQ(frame.type, FrameType::kStatus);
    const std::optional<StudyStatus> status = decode_status(frame.payload);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->status, "usage");
  }
  EXPECT_EQ(stop_server(), 0);
}

}  // namespace
}  // namespace vdbench::net
