#include "net/frame.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "fault/injector.h"

namespace vdbench::net {
namespace {

// In-memory byte source over `bytes`, advancing `pos`; a read past the end
// throws TransportError exactly like a socket EOF.
ReadExactFn string_reader(const std::string& bytes, std::size_t& pos) {
  return [&bytes, &pos](char* dst, std::size_t n) {
    if (pos + n > bytes.size())
      throw TransportError("short read in test source");
    std::memcpy(dst, bytes.data() + pos, n);
    pos += n;
  };
}

class FrameTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::Injector::global().disarm(); }
  void TearDown() override { fault::Injector::global().disarm(); }
};

TEST_F(FrameTest, RoundTripsEveryFrameType) {
  for (const FrameType type :
       {FrameType::kRequest, FrameType::kProgress, FrameType::kExport,
        FrameType::kManifest, FrameType::kStatus}) {
    const std::string wire = encode_frame(type, "payload bytes");
    std::size_t pos = 0;
    const Frame frame = read_frame(string_reader(wire, pos), kRoleClient);
    EXPECT_EQ(frame.type, type);
    EXPECT_EQ(frame.payload, "payload bytes");
    EXPECT_EQ(pos, wire.size());  // nothing left over
  }
}

TEST_F(FrameTest, RoundTripsEmptyAndBinaryPayloads) {
  std::string binary("\x00\x01\xff\xfe-binary\n\r", 11);
  for (const std::string& payload : {std::string(), binary}) {
    const std::string wire = encode_frame(FrameType::kExport, payload);
    std::size_t pos = 0;
    const Frame frame = read_frame(string_reader(wire, pos), kRoleClient);
    EXPECT_EQ(frame.payload, payload);
  }
}

TEST_F(FrameTest, WriteFrameEmitsTheEncodedBytes) {
  std::string sent;
  write_frame([&](const char* src,
                  std::size_t n) { sent.append(src, n); },
              FrameType::kStatus, "{}", kRoleClient);
  EXPECT_EQ(sent, encode_frame(FrameType::kStatus, "{}"));
}

TEST_F(FrameTest, RejectsBadMagic) {
  std::string wire = encode_frame(FrameType::kStatus, "x");
  wire[0] = 'X';
  std::size_t pos = 0;
  EXPECT_THROW(read_frame(string_reader(wire, pos), kRoleClient),
               FrameCorrupt);
}

TEST_F(FrameTest, RejectsVersionSkew) {
  std::string wire = encode_frame(FrameType::kStatus, "x");
  wire[4] = static_cast<char>(kWireVersion + 1);
  std::size_t pos = 0;
  EXPECT_THROW(read_frame(string_reader(wire, pos), kRoleClient),
               FrameCorrupt);
}

TEST_F(FrameTest, RejectsEveryFlippedPayloadBit) {
  const std::string wire = encode_frame(FrameType::kExport, "payload");
  // Flip each byte of the wire image in turn: every single-bit mutation
  // must be rejected — FrameCorrupt for in-frame damage, TransportError
  // when a mangled length field runs past the available bytes. Never a
  // silently misparsed frame.
  for (std::size_t i = 0; i < wire.size(); ++i) {
    std::string damaged = wire;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x10);
    std::size_t pos = 0;
    EXPECT_THROW((void)read_frame(string_reader(damaged, pos), kRoleClient),
                 std::runtime_error)
        << "byte " << i << " flip was accepted";
  }
}

TEST_F(FrameTest, TruncatedTailIsATransportErrorNotAShortFrame) {
  const std::string wire = encode_frame(FrameType::kExport, "payload");
  for (const std::size_t keep : {wire.size() - 1, wire.size() / 2,
                                 std::size_t{5}, std::size_t{0}}) {
    const std::string cut = wire.substr(0, keep);
    std::size_t pos = 0;
    EXPECT_THROW(read_frame(string_reader(cut, pos), kRoleClient),
                 TransportError);
  }
}

TEST_F(FrameTest, RejectsUnknownFrameType) {
  // Type byte 9 is unassigned; rebuild the checksum so only the type is
  // wrong — the reader must still reject it.
  const std::string payload = "x";
  std::string wire = encode_frame(FrameType::kStatus, payload);
  // Patch type and recompute: easiest is to encode with a valid type and
  // assert the reader checks the range AFTER the checksum.
  wire = encode_frame(static_cast<FrameType>(9), payload);
  std::size_t pos = 0;
  EXPECT_THROW(read_frame(string_reader(wire, pos), kRoleClient),
               FrameCorrupt);
}

TEST_F(FrameTest, NetReadFaultRaisesTransportError) {
  fault::Injector::global().arm("net.read=io_error@client:1");
  const std::string wire = encode_frame(FrameType::kStatus, "{}");
  std::size_t pos = 0;
  EXPECT_THROW(read_frame(string_reader(wire, pos), kRoleClient),
               TransportError);
  // The schedule fired once; the retry reads clean.
  pos = 0;
  EXPECT_EQ(read_frame(string_reader(wire, pos), kRoleClient).payload, "{}");
}

TEST_F(FrameTest, NetReadFaultKeyFilterScopesToOneRole) {
  fault::Injector::global().arm("net.read=io_error@server:1");
  const std::string wire = encode_frame(FrameType::kStatus, "{}");
  std::size_t pos = 0;
  // Client-role reads never match a server-keyed rule.
  EXPECT_NO_THROW(
      (void)read_frame(string_reader(wire, pos), kRoleClient));
  pos = 0;
  EXPECT_THROW(read_frame(string_reader(wire, pos), kRoleServer),
               TransportError);
}

TEST_F(FrameTest, NetFrameCorruptFaultIsRejectedByChecksum) {
  fault::Injector::global().arm("net.frame=corrupt@client:1");
  const std::string wire = encode_frame(FrameType::kExport, "payload");
  std::size_t pos = 0;
  EXPECT_THROW(read_frame(string_reader(wire, pos), kRoleClient),
               FrameCorrupt);
}

TEST_F(FrameTest, NetFrameTruncateFaultIsRejectedByChecksum) {
  fault::Injector::global().arm("net.frame=truncate@client:1");
  const std::string wire = encode_frame(FrameType::kExport, "payload");
  std::size_t pos = 0;
  EXPECT_THROW(read_frame(string_reader(wire, pos), kRoleClient),
               FrameCorrupt);
}

TEST_F(FrameTest, NetWriteFaultRaisesTransportErrorBeforeAnyBytes) {
  fault::Injector::global().arm("net.write=io_error@client:1");
  std::string sent;
  EXPECT_THROW(
      write_frame([&](const char* src,
                      std::size_t n) { sent.append(src, n); },
                  FrameType::kStatus, "{}", kRoleClient),
      TransportError);
  EXPECT_TRUE(sent.empty());  // the fault fires before the torn write
}

TEST_F(FrameTest, OversizedDeclaredLengthIsRejected) {
  std::string wire = encode_frame(FrameType::kExport, "x");
  // Declared length field lives at offset 8..11 (after magic + ver + type
  // + reserved); blow it past the cap.
  wire[8] = '\xff';
  wire[9] = '\xff';
  wire[10] = '\xff';
  wire[11] = '\x7f';
  std::size_t pos = 0;
  EXPECT_THROW(read_frame(string_reader(wire, pos), kRoleClient),
               FrameCorrupt);
}

}  // namespace
}  // namespace vdbench::net
