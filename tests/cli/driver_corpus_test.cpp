// Driver-level corpus intake tests: --sarif-report/--ground-truth parsing
// and pairing, the usage-error path for unreadable files, content digests
// joining corpus experiments' cache keys (and staying out of everyone
// else's), and byte-identical exports across thread counts and cache
// temperatures when an external corpus is attached.
#include "cli/driver.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "cli/experiment.h"
#include "corpus/intake.h"
#include "corpus/matcher.h"

namespace vdbench::cli {
namespace {

namespace fs = std::filesystem;

constexpr const char* kTruthDoc =
    R"({"schema":1,"name":"toy","rules":{"r-sql":"CWE-89"},)"
    R"("ecosystems":[{"name":"e","sites":[)"
    R"({"uri":"a.c","line":1,"cwe":"CWE-89","vulnerable":true},)"
    R"({"uri":"a.c","line":2,"vulnerable":false}]}]})";

constexpr const char* kSarifDoc =
    R"({"version":"2.1.0","runs":[{"tool":{"driver":{"name":"toytool"}},)"
    R"("results":[{"ruleId":"r-sql","locations":[{"physicalLocation":)"
    R"({"artifactLocation":{"uri":"a.c"},"region":{"startLine":1}}}]}]}]})";

// One corpus experiment (scores whatever the driver hands it) and one
// ordinary experiment that must never see the corpus files.
ExperimentRegistry corpus_registry() {
  ExperimentRegistry registry;
  Experiment scored;
  scored.id = "c1";
  scored.title = "scores the external corpus";
  scored.config = "corpus-toy{n=1}";
  scored.run = [](ExperimentContext& ctx) {
    if (ctx.corpus.sarif_report.empty()) {
      ctx.out << "c1: no external corpus\n";
      return;
    }
    const corpus::Manifest truth =
        corpus::read_manifest_file(ctx.corpus.ground_truth);
    const corpus::SarifReport report =
        corpus::read_sarif_file(ctx.corpus.sarif_report);
    const corpus::MatchResult match = corpus::match_findings(truth, report);
    const core::ConfusionMatrix cm = corpus::evaluate_direct(match.records);
    ctx.out << "c1: sites=" << match.stats.sites
            << " matched=" << match.stats.matched << " tp=" << cm.tp << "\n";
  };
  scored.corpus = true;
  registry.add(scored);

  Experiment plain;
  plain.id = "p1";
  plain.title = "ignores the corpus";
  plain.config = "plain{n=1}";
  plain.run = [](ExperimentContext& ctx) { ctx.out << "p1 line\n"; };
  registry.add(plain);
  return registry;
}

class DriverCorpusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("vddriver_corpus_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    truth_path_ = (dir_ / "truth.json").string();
    sarif_path_ = (dir_ / "report.sarif").string();
    std::ofstream(truth_path_, std::ios::binary) << kTruthDoc;
    std::ofstream(sarif_path_, std::ios::binary) << kSarifDoc;
  }
  void TearDown() override { fs::remove_all(dir_); }

  DriverOptions base_options() {
    DriverOptions options;
    options.cache_dir = (dir_ / "cache").string();
    options.manifest_path = (dir_ / "manifest.json").string();
    options.artifact_dir = dir_.string();
    options.threads = 1;
    options.quiet = true;
    options.sarif_report = sarif_path_;
    options.ground_truth = truth_path_;
    options.clock = [this] { return ++tick_; };
    return options;
  }

  static std::string slurp(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in), {}};
  }

  fs::path dir_;
  std::string truth_path_;
  std::string sarif_path_;
  std::uint64_t tick_ = 0;
};

TEST(ParseArgsCorpusTest, ParsesBothFlagFormsTogether) {
  const char* argv[] = {"vdbench", "--sarif-report", "r.sarif",
                        "--ground-truth=t.json"};
  std::ostringstream err;
  bool help = false;
  const auto options =
      parse_args(static_cast<int>(std::size(argv)), argv, err, &help);
  ASSERT_TRUE(options.has_value()) << err.str();
  EXPECT_EQ(options->sarif_report, "r.sarif");
  EXPECT_EQ(options->ground_truth, "t.json");
}

TEST(ParseArgsCorpusTest, RejectsAnUnpairedFlag) {
  for (const char* lone : {"--sarif-report=r.sarif", "--ground-truth=t.json"}) {
    const char* argv[] = {"vdbench", lone};
    std::ostringstream err;
    bool help = false;
    EXPECT_FALSE(parse_args(2, argv, err, &help).has_value()) << lone;
    EXPECT_NE(err.str().find("must be given together"), std::string::npos)
        << err.str();
  }
}

TEST_F(DriverCorpusTest, UnreadableCorpusFilesAreAUsageError) {
  const ExperimentRegistry registry = corpus_registry();
  DriverOptions options = base_options();
  options.sarif_report = (dir_ / "absent.sarif").string();
  std::ostringstream out;
  EXPECT_EQ(run_driver(registry, options, out).exit_code, kExitUsage);
  EXPECT_NE(out.str().find("cannot read --sarif-report"), std::string::npos)
      << out.str();

  options = base_options();
  options.ground_truth = (dir_ / "absent.json").string();
  std::ostringstream out2;
  EXPECT_EQ(run_driver(registry, options, out2).exit_code, kExitUsage);
  EXPECT_NE(out2.str().find("cannot read --ground-truth"), std::string::npos)
      << out2.str();
}

TEST_F(DriverCorpusTest, CorpusDigestsJoinTheCacheKey) {
  const ExperimentRegistry registry = corpus_registry();
  DriverOptions options = base_options();
  options.experiments = "c1";

  std::ostringstream cold;
  const RunOutcome first = run_driver(registry, options, cold);
  ASSERT_EQ(first.exit_code, 0);
  EXPECT_EQ(first.misses, 1u);

  // Same files: warm hit, same key.
  const RunOutcome second = run_driver(registry, options, std::cout);
  EXPECT_EQ(second.hits, 1u);
  EXPECT_EQ(second.experiments[0].key_hex, first.experiments[0].key_hex);

  // Touching the report's CONTENT re-addresses the entry: miss, new key.
  std::ofstream(sarif_path_, std::ios::binary)
      << R"({"version":"2.1.0","runs":[{"tool":{"driver":{"name":"other"}},)"
      << R"("results":[]}]})";
  const RunOutcome third = run_driver(registry, options, std::cout);
  EXPECT_EQ(third.misses, 1u);
  EXPECT_NE(third.experiments[0].key_hex, first.experiments[0].key_hex);

  // And the ground truth's content is addressed independently.
  std::ofstream(truth_path_, std::ios::binary)
      << R"({"schema":1,"name":"toy2","ecosystems":[{"name":"e","sites":[)"
      << R"({"uri":"a.c","line":9,"vulnerable":false}]}]})";
  const RunOutcome fourth = run_driver(registry, options, std::cout);
  EXPECT_EQ(fourth.misses, 1u);
  EXPECT_NE(fourth.experiments[0].key_hex, third.experiments[0].key_hex);
}

TEST_F(DriverCorpusTest, AbsentCorpusIsADistinctCacheAddress) {
  const ExperimentRegistry registry = corpus_registry();
  DriverOptions with = base_options();
  with.experiments = "c1";
  const RunOutcome attached = run_driver(registry, with, std::cout);
  ASSERT_EQ(attached.exit_code, 0);

  DriverOptions without = base_options();
  without.experiments = "c1";
  without.sarif_report.clear();
  without.ground_truth.clear();
  std::ostringstream out;
  const RunOutcome detached = run_driver(registry, without, out);
  ASSERT_EQ(detached.exit_code, 0);
  EXPECT_EQ(detached.misses, 1u);  // no aliasing with the attached run
  EXPECT_NE(detached.experiments[0].key_hex,
            attached.experiments[0].key_hex);
}

TEST_F(DriverCorpusTest, NonCorpusExperimentsNeverFoldTheDigests) {
  const ExperimentRegistry registry = corpus_registry();
  DriverOptions with = base_options();
  with.experiments = "p1";
  const RunOutcome attached = run_driver(registry, with, std::cout);

  DriverOptions without = base_options();
  without.experiments = "p1";
  without.sarif_report.clear();
  without.ground_truth.clear();
  without.cache_dir = (dir_ / "cache2").string();
  const RunOutcome detached = run_driver(registry, without, std::cout);
  // Identical key: p1's result is shared whether or not a corpus rode along.
  EXPECT_EQ(attached.experiments[0].key_hex, detached.experiments[0].key_hex);
}

TEST_F(DriverCorpusTest, CorpusRunsExportByteIdenticallyAcrossThreadsAndCache) {
  const ExperimentRegistry registry = corpus_registry();

  DriverOptions one = base_options();
  one.experiments = "c1";
  one.threads = 1;
  one.json_out = (dir_ / "one_cold.json").string();
  ASSERT_EQ(run_driver(registry, one, std::cout).exit_code, 0);
  one.json_out = (dir_ / "one_warm.json").string();
  ASSERT_EQ(run_driver(registry, one, std::cout).exit_code, 0);

  DriverOptions three = base_options();
  three.experiments = "c1";
  three.threads = 3;
  three.cache_dir = (dir_ / "cache3").string();
  three.json_out = (dir_ / "three_cold.json").string();
  ASSERT_EQ(run_driver(registry, three, std::cout).exit_code, 0);

  const std::string one_cold = slurp(dir_ / "one_cold.json");
  ASSERT_FALSE(one_cold.empty());
  EXPECT_EQ(one_cold, slurp(dir_ / "one_warm.json"));
  EXPECT_EQ(one_cold, slurp(dir_ / "three_cold.json"));
  EXPECT_NE(one_cold.find("c1: sites=2 matched=1 tp=1"), std::string::npos);
}

}  // namespace
}  // namespace vdbench::cli
