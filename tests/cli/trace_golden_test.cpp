// Golden-file test for --trace-out: runs a real registry experiment
// through the driver, then validates the emitted Chrome/Perfetto trace —
// schema (ph/ts/pid/tid on every event), balanced B/E pairs per thread,
// and every span name drawn from the documented set (driver seams,
// executor tasks, cache operations, and the stage:: phase constants in
// bench/experiments.h). Also pins the manifest telemetry block's counter
// inventory and the warm/cold byte-identity of --json-out with telemetry
// present.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cli/driver.h"
#include "cli/experiment.h"
#include "experiments.h"
#include "obs/names.h"
#include "obs/registry.h"
#include "report/json_reader.h"

namespace vdbench::cli {
namespace {

namespace fs = std::filesystem;

class TraceGoldenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("vdtrace_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  DriverOptions base_options() {
    DriverOptions options;
    options.cache_dir = (dir_ / "cache").string();
    options.manifest_path = (dir_ / "manifest.json").string();
    options.artifact_dir = dir_.string();
    options.threads = 1;
    options.study_seed = 7;
    options.quiet = true;
    options.clock = [this] { return ++tick_; };
    return options;
  }

  static std::string slurp(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in), {}};
  }

  fs::path dir_;
  std::uint64_t tick_ = 0;
};

// The span-name registry (obs/names.h) plus the stage:: constants;
// prefixes cover the parameterised phase labels ("stage 2: s1_default").
bool is_documented_name(const std::string& name) {
  static const std::set<std::string> kExact = {
      std::begin(obs::names::kAllSpans), std::end(obs::names::kAllSpans)};
  static const std::set<std::string> kStages = {
      bench::stage::kCatalogue, bench::stage::kStage1Assessment,
      bench::stage::kStage2Validation, bench::stage::kPrevalenceSweep,
      bench::stage::kGenerateWorkload, bench::stage::kGenerateWorkloads,
      bench::stage::kBenchmarkTools, bench::stage::kBenchmarkAggregate,
      bench::stage::kAgreementMatrix, bench::stage::kNoiseSweep,
      bench::stage::kMethodAblation, bench::stage::kMicrobenchmarks,
      bench::stage::kRocSweep, bench::stage::kSuiteCampaign,
      bench::stage::kWeightSensitivity, bench::stage::kPresetSummary,
      bench::stage::kPerClassDetail, bench::stage::kRender,
      bench::stage::kBaseCorpusCohort, bench::stage::kLowPrevalenceCohort,
      bench::stage::kChecksum, bench::stage::kStreamEvaluate,
      bench::stage::kStreamMetrics};
  if (kExact.contains(name) || kStages.contains(name)) return true;
  static const std::vector<std::string> kPrefixes = {
      bench::stage::kStage2Prefix, bench::stage::kGridPrevalencePrefix,
      bench::stage::kPairAnalysisPrefix, bench::stage::kPowerGridPrefix};
  for (const std::string& prefix : kPrefixes)
    if (name.compare(0, prefix.size(), prefix) == 0) return true;
  return false;
}

TEST_F(TraceGoldenTest, ProbeRunEmitsValidBalancedDocumentedTrace) {
  const ExperimentRegistry registry = bench::study_registry();
  DriverOptions options = base_options();
  options.experiments = "probe";
  options.trace_out = (dir_ / "trace.json").string();
  std::ostringstream out;
  const RunOutcome outcome = run_driver(registry, options, out);
  EXPECT_EQ(outcome.exit_code, kExitOk) << out.str();

  const std::string text = slurp(dir_ / "trace.json");
  ASSERT_FALSE(text.empty());
  const std::optional<report::JsonValue> doc = report::parse_json(text);
  ASSERT_TRUE(doc.has_value()) << "trace is not valid JSON";
  ASSERT_TRUE(doc->is_object());
  const report::JsonValue* events = doc->member("traceEvents");
  ASSERT_NE(events, nullptr);
  const std::vector<report::JsonValue>* array = events->as_array();
  ASSERT_NE(array, nullptr);
  ASSERT_FALSE(array->empty());

  std::map<double, int> depth_by_tid;
  std::set<std::string> names;
  for (const report::JsonValue& event : *array) {
    const report::JsonValue* name = event.member("name");
    const report::JsonValue* ph = event.member("ph");
    const report::JsonValue* ts = event.member("ts");
    const report::JsonValue* pid = event.member("pid");
    const report::JsonValue* tid = event.member("tid");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(ts, nullptr);
    ASSERT_NE(pid, nullptr);
    ASSERT_NE(tid, nullptr);
    ASSERT_NE(name->as_string(), nullptr);
    ASSERT_NE(ph->as_string(), nullptr);
    ASSERT_TRUE(ts->as_number().has_value());
    ASSERT_TRUE(pid->as_number().has_value());
    ASSERT_TRUE(tid->as_number().has_value());
    EXPECT_FALSE(name->as_string()->empty());
    EXPECT_GE(*ts->as_number(), 0.0);
    EXPECT_EQ(*pid->as_number(), 1.0);

    const std::string& phase = *ph->as_string();
    ASSERT_TRUE(phase == "B" || phase == "E" || phase == "i")
        << "unknown phase " << phase;
    int& depth = depth_by_tid[*tid->as_number()];
    if (phase == "B") ++depth;
    if (phase == "E") --depth;
    ASSERT_GE(depth, 0) << "E without matching B on tid "
                        << *tid->as_number();
    names.insert(*name->as_string());
    EXPECT_TRUE(is_documented_name(*name->as_string()))
        << "undocumented span name: " << *name->as_string();
  }
  for (const auto& [tid, depth] : depth_by_tid)
    EXPECT_EQ(depth, 0) << "unbalanced B/E on tid " << tid;

  // The probe run must actually hit the three layers the tracer claims to
  // cover: the driver loop, the experiment's stage scope, and the executor.
  EXPECT_TRUE(names.count("driver.experiment"));
  EXPECT_TRUE(names.count(bench::stage::kChecksum));
  EXPECT_TRUE(names.count("executor.task"));
}

TEST_F(TraceGoldenTest, ManifestTelemetryExportsEveryCounterAndGauge) {
  const ExperimentRegistry registry = bench::study_registry();
  DriverOptions options = base_options();
  options.experiments = "probe";
  std::ostringstream out;
  const RunOutcome outcome = run_driver(registry, options, out);
  ASSERT_EQ(outcome.exit_code, kExitOk) << out.str();

  const std::optional<report::JsonValue> doc =
      report::parse_json(slurp(dir_ / "manifest.json"));
  ASSERT_TRUE(doc.has_value());
  const report::JsonValue* telemetry = doc->member("telemetry");
  ASSERT_NE(telemetry, nullptr);
  const report::JsonValue* counters = telemetry->member("counters");
  ASSERT_NE(counters, nullptr);
  for (std::size_t i = 0; i < obs::kCounterCount; ++i) {
    const auto counter = static_cast<obs::Counter>(i);
    const report::JsonValue* value =
        counters->member(obs::counter_name(counter));
    ASSERT_NE(value, nullptr)
        << "manifest telemetry missing counter "
        << obs::counter_name(counter);
    EXPECT_TRUE(value->as_number().has_value());
  }
  const report::JsonValue* gauges = telemetry->member("gauges");
  ASSERT_NE(gauges, nullptr);
  for (std::size_t i = 0; i < obs::kGaugeCount; ++i) {
    const auto gauge = static_cast<obs::Gauge>(i);
    ASSERT_NE(gauges->member(obs::gauge_name(gauge)), nullptr)
        << "manifest telemetry missing gauge " << obs::gauge_name(gauge);
  }
  // The probe computes (never cached), so the run counted an executed
  // experiment and its 256 executor tasks.
  EXPECT_GE(*counters->member("experiments.computed")->as_number(), 1.0);
  EXPECT_GE(*counters->member("tasks.executed")->as_number(), 256.0);
}

TEST_F(TraceGoldenTest, JsonExportStaysByteIdenticalWarmVsCold) {
  // The telemetry block in --json-out is derived from the exported content
  // only (never from run-variant counters), so a cold computing run and a
  // warm cache-replay run export byte-identical documents.
  ExperimentRegistry registry;
  registry.add({"t1", "writes a line", "toy{n=1}", true,
                [](ExperimentContext& ctx) {
                  // vdlint:allow(vdl-phase-literal)
                  const auto scope = ctx.timer.scope("compute");
                  ctx.out << "t1 report line\n";
                  ctx.add_artifact("t1_data.json", "{\"v\":1}\n");
                }});

  DriverOptions options = base_options();
  options.experiments = "t1";
  options.json_out = (dir_ / "export.json").string();
  std::ostringstream out_cold;
  const RunOutcome cold = run_driver(registry, options, out_cold);
  ASSERT_EQ(cold.exit_code, kExitOk) << out_cold.str();
  ASSERT_EQ(cold.misses, 1u);
  const std::string export_cold = slurp(dir_ / "export.json");

  std::ostringstream out_warm;
  const RunOutcome warm = run_driver(registry, options, out_warm);
  ASSERT_EQ(warm.exit_code, kExitOk) << out_warm.str();
  ASSERT_EQ(warm.hits, 1u);
  const std::string export_warm = slurp(dir_ / "export.json");

  EXPECT_EQ(export_cold, export_warm)
      << "--json-out must not depend on cache temperature";

  const std::optional<report::JsonValue> doc = report::parse_json(export_cold);
  ASSERT_TRUE(doc.has_value());
  const report::JsonValue* telemetry = doc->member("telemetry");
  ASSERT_NE(telemetry, nullptr) << "export telemetry block missing";
  ASSERT_NE(telemetry->member("experiments"), nullptr);
  EXPECT_EQ(*telemetry->member("experiments")->as_number(), 1.0);
  EXPECT_EQ(*telemetry->member("failures")->as_number(), 0.0);
  EXPECT_GT(*telemetry->member("payload_bytes")->as_number(), 0.0);
  EXPECT_EQ(*telemetry->member("artifacts")->as_number(), 1.0);
  ASSERT_NE(telemetry->member("payload_size_log2"), nullptr);
  EXPECT_FALSE(telemetry->member("payload_size_log2")->as_array()->empty());
}

}  // namespace
}  // namespace vdbench::cli
