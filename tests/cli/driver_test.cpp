#include "cli/driver.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/experiment.h"
#include "experiments.h"
#include "stats/parallel.h"

namespace vdbench::cli {
namespace {

namespace fs = std::filesystem;

// A tiny deterministic registry: two cacheable experiments (one with an
// artifact) and one non-cacheable.
ExperimentRegistry toy_registry() {
  ExperimentRegistry registry;
  registry.add({"t1", "writes a line", "toy{n=1}", true,
                [](ExperimentContext& ctx) {
                  // vdlint:allow(vdl-phase-literal)
                  const auto scope = ctx.timer.scope("compute");
                  ctx.out << "t1 report line\n";
                }});
  registry.add({"t2", "writes an artifact", "toy{n=2}", true,
                [](ExperimentContext& ctx) {
                  ctx.out << "t2 report line\n";
                  ctx.add_artifact("t2_data.json", "{\"v\":2}\n");
                }});
  registry.add({"t3", "non-cacheable", "toy{n=3}", false,
                [](ExperimentContext& ctx) { ctx.out << "t3 fresh\n"; }});
  return registry;
}

class DriverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("vddriver_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  DriverOptions base_options() {
    DriverOptions options;
    options.cache_dir = (dir_ / "cache").string();
    options.manifest_path = (dir_ / "manifest.json").string();
    options.artifact_dir = dir_.string();
    options.threads = 1;
    options.study_seed = 7;
    options.clock = [this] { return ++tick_; };
    return options;
  }

  static std::string slurp(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in), {}};
  }

  fs::path dir_;
  std::uint64_t tick_ = 0;
};

TEST(ExperimentRegistryTest, RejectsDuplicateAndEmptyIds) {
  ExperimentRegistry registry;
  registry.add({"x", "", "", true, [](ExperimentContext&) {}});
  EXPECT_THROW(registry.add({"x", "", "", true, [](ExperimentContext&) {}}),
               std::logic_error);
  EXPECT_THROW(registry.add({"", "", "", true, [](ExperimentContext&) {}}),
               std::logic_error);
}

TEST(ExperimentRegistryTest, SelectAllMeansEveryCacheableExperiment) {
  const ExperimentRegistry registry = toy_registry();
  std::vector<std::string> unknown;
  const auto all = registry.select("all", unknown);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0]->id, "t1");
  EXPECT_EQ(all[1]->id, "t2");
  EXPECT_TRUE(unknown.empty());
}

TEST(ExperimentRegistryTest, SelectDeduplicatesAndKeepsRegistryOrder) {
  const ExperimentRegistry registry = toy_registry();
  std::vector<std::string> unknown;
  const auto picked = registry.select("t3,t1,t3,e99", unknown);
  ASSERT_EQ(picked.size(), 2u);
  EXPECT_EQ(picked[0]->id, "t1");  // registry order, not request order
  EXPECT_EQ(picked[1]->id, "t3");  // explicit naming admits non-cacheable
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "e99");
}

TEST(ParseArgsTest, ParsesBothFlagForms) {
  const char* argv[] = {"vdbench",           "--experiments", "e1,e2",
                        "--threads=4",       "--no-cache",    "--json-out",
                        "/tmp/out.json",     "--refresh",     "--quiet",
                        "--min-hit-rate=0.9"};
  std::ostringstream err;
  bool help = false;
  const auto options =
      parse_args(static_cast<int>(std::size(argv)), argv, err, &help);
  ASSERT_TRUE(options.has_value()) << err.str();
  EXPECT_EQ(options->experiments, "e1,e2");
  EXPECT_EQ(options->threads, 4u);
  EXPECT_FALSE(options->use_cache);
  EXPECT_EQ(options->json_out, "/tmp/out.json");
  EXPECT_TRUE(options->refresh);
  EXPECT_TRUE(options->quiet);
  EXPECT_DOUBLE_EQ(options->min_hit_rate, 0.9);
  EXPECT_FALSE(help);
}

TEST(ParseArgsTest, RejectsUnknownFlagsAndBadValues) {
  std::ostringstream err;
  bool help = false;
  const char* bad_flag[] = {"vdbench", "--bogus"};
  EXPECT_FALSE(parse_args(2, bad_flag, err, &help).has_value());
  const char* missing_value[] = {"vdbench", "--experiments"};
  EXPECT_FALSE(parse_args(2, missing_value, err, &help).has_value());
  const char* bad_rate[] = {"vdbench", "--min-hit-rate=1.5"};
  EXPECT_FALSE(parse_args(2, bad_rate, err, &help).has_value());
  EXPECT_FALSE(help);
  const char* help_flag[] = {"vdbench", "--help"};
  EXPECT_FALSE(parse_args(2, help_flag, err, &help).has_value());
  EXPECT_TRUE(help);
}

TEST(PayloadTest, RoundTripsTextAndArtifacts) {
  const Experiment experiment{"t2", "writes an artifact", "toy{n=2}", true,
                              nullptr};
  const std::vector<Artifact> artifacts = {{"a.json", "{\"k\":[1,2]}\n"}};
  const std::string payload = build_payload(
      experiment, 7, "report text\nwith \"quotes\"\n", artifacts);
  const auto decoded = decode_payload(payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->text, "report text\nwith \"quotes\"\n");
  ASSERT_EQ(decoded->artifacts.size(), 1u);
  EXPECT_EQ(decoded->artifacts[0].name, "a.json");
  EXPECT_EQ(decoded->artifacts[0].content, "{\"k\":[1,2]}\n");
}

TEST(PayloadTest, RejectsStructurallyInvalidPayloads) {
  EXPECT_FALSE(decode_payload("not json").has_value());
  EXPECT_FALSE(decode_payload("{}").has_value());
  EXPECT_FALSE(decode_payload("{\"text\":42}").has_value());
}

TEST_F(DriverTest, ColdRunMissesThenWarmRunHitsByteIdentically) {
  const ExperimentRegistry registry = toy_registry();
  DriverOptions options = base_options();
  options.experiments = "all";

  std::ostringstream cold;
  const RunOutcome first = run_driver(registry, options, cold);
  EXPECT_EQ(first.exit_code, 0);
  EXPECT_EQ(first.hits, 0u);
  EXPECT_EQ(first.misses, 2u);
  EXPECT_NE(cold.str().find("t1 report line"), std::string::npos);

  // The artifact landed on disk.
  EXPECT_EQ(slurp(dir_ / "t2_data.json"), "{\"v\":2}\n");
  fs::remove(dir_ / "t2_data.json");

  std::ostringstream warm;
  const RunOutcome second = run_driver(registry, options, warm);
  EXPECT_EQ(second.exit_code, 0);
  EXPECT_EQ(second.hits, 2u);
  EXPECT_EQ(second.misses, 0u);
  EXPECT_DOUBLE_EQ(second.hit_rate, 1.0);
  ASSERT_EQ(second.experiments.size(), 2u);
  EXPECT_EQ(second.experiments[0].source,
            ExperimentOutcome::Source::kCacheHit);
  // Same report text replays from the cache...
  EXPECT_NE(warm.str().find("t1 report line"), std::string::npos);
  // ...and the artifact is rewritten without recomputation.
  EXPECT_EQ(slurp(dir_ / "t2_data.json"), "{\"v\":2}\n");
  // The keys are stable across runs.
  EXPECT_EQ(first.experiments[0].key_hex, second.experiments[0].key_hex);
}

TEST_F(DriverTest, JsonExportIsByteIdenticalAcrossColdAndWarmRuns) {
  const ExperimentRegistry registry = toy_registry();
  DriverOptions options = base_options();
  options.quiet = true;

  options.json_out = (dir_ / "run1.json").string();
  ASSERT_EQ(run_driver(registry, options, std::cout).exit_code, 0);
  options.json_out = (dir_ / "run2.json").string();
  ASSERT_EQ(run_driver(registry, options, std::cout).exit_code, 0);

  const std::string run1 = slurp(dir_ / "run1.json");
  const std::string run2 = slurp(dir_ / "run2.json");
  ASSERT_FALSE(run1.empty());
  EXPECT_EQ(run1, run2);
}

TEST_F(DriverTest, RefreshRecomputesAndOverwrites) {
  const ExperimentRegistry registry = toy_registry();
  DriverOptions options = base_options();
  options.quiet = true;
  ASSERT_EQ(run_driver(registry, options, std::cout).misses, 2u);

  options.refresh = true;
  const RunOutcome refreshed = run_driver(registry, options, std::cout);
  EXPECT_EQ(refreshed.hits, 0u);
  EXPECT_EQ(refreshed.misses, 2u);

  // The refreshed entries serve hits again afterwards.
  options.refresh = false;
  EXPECT_EQ(run_driver(registry, options, std::cout).hits, 2u);
}

TEST_F(DriverTest, NoCacheBypassesReadsAndWrites) {
  const ExperimentRegistry registry = toy_registry();
  DriverOptions options = base_options();
  options.quiet = true;
  options.use_cache = false;
  const RunOutcome run = run_driver(registry, options, std::cout);
  EXPECT_EQ(run.exit_code, 0);
  ASSERT_EQ(run.experiments.size(), 2u);
  EXPECT_EQ(run.experiments[0].source, ExperimentOutcome::Source::kBypass);
  EXPECT_FALSE(fs::exists(dir_ / "cache"));
}

TEST_F(DriverTest, UnknownExperimentIdFailsTheRun) {
  const ExperimentRegistry registry = toy_registry();
  DriverOptions options = base_options();
  options.experiments = "t1,e99";
  std::ostringstream out;
  EXPECT_EQ(run_driver(registry, options, out).exit_code, 2);
}

TEST_F(DriverTest, MinHitRateGatesTheExitCode) {
  const ExperimentRegistry registry = toy_registry();
  DriverOptions options = base_options();
  options.quiet = true;
  options.min_hit_rate = 0.9;
  // Cold run: 0% hits => assertion fails.
  EXPECT_EQ(run_driver(registry, options, std::cout).exit_code, 1);
  // Warm run: 100% hits => passes.
  EXPECT_EQ(run_driver(registry, options, std::cout).exit_code, 0);
}

TEST_F(DriverTest, NonCacheableExperimentsAlwaysRunFresh) {
  const ExperimentRegistry registry = toy_registry();
  DriverOptions options = base_options();
  options.quiet = true;
  options.experiments = "t3";
  for (int round = 0; round < 2; ++round) {
    const RunOutcome run = run_driver(registry, options, std::cout);
    ASSERT_EQ(run.experiments.size(), 1u);
    EXPECT_EQ(run.experiments[0].source, ExperimentOutcome::Source::kBypass);
    EXPECT_EQ(run.hits + run.misses, 0u);  // not a cacheable lookup
  }
}

TEST_F(DriverTest, FailingExperimentIsReportedNotFatal) {
  ExperimentRegistry registry;
  registry.add({"boom", "throws", "boom{}", true, [](ExperimentContext&) {
                  throw std::runtime_error("exploded");
                }});
  DriverOptions options = base_options();
  options.experiments = "boom";
  std::ostringstream out;
  const RunOutcome run = run_driver(registry, options, out);
  EXPECT_EQ(run.exit_code, 1);
  ASSERT_EQ(run.experiments.size(), 1u);
  EXPECT_EQ(run.experiments[0].source, ExperimentOutcome::Source::kFailed);
  EXPECT_NE(run.experiments[0].error.find("exploded"), std::string::npos);
}

TEST_F(DriverTest, ManifestRecordsOutcomesAndHitRate) {
  const ExperimentRegistry registry = toy_registry();
  DriverOptions options = base_options();
  options.quiet = true;
  ASSERT_EQ(run_driver(registry, options, std::cout).exit_code, 0);
  ASSERT_EQ(run_driver(registry, options, std::cout).exit_code, 0);
  const std::string manifest = slurp(dir_ / "manifest.json");
  EXPECT_NE(manifest.find("\"source\":\"hit\""), std::string::npos);
  EXPECT_NE(manifest.find("\"hit_rate\":1"), std::string::npos);
  EXPECT_NE(manifest.find("\"id\":\"t1\""), std::string::npos);
}

// The PR-1 guarantee the cache rests on: results are bit-identical for any
// worker count, so 1-thread and 8-thread runs share cache keys and
// payloads. Exercised end-to-end on the real e1 experiment.
TEST_F(DriverTest, ThreadCountDoesNotChangeKeysOrPayloads) {
  const ExperimentRegistry registry = bench::study_registry();

  DriverOptions one = base_options();
  one.quiet = true;
  one.experiments = "e1";
  one.cache_dir = (dir_ / "cache1").string();
  one.json_out = (dir_ / "one.json").string();
  one.threads = 1;
  const RunOutcome run_one = run_driver(registry, one, std::cout);
  ASSERT_EQ(run_one.exit_code, 0);

  DriverOptions eight = one;
  eight.cache_dir = (dir_ / "cache8").string();
  eight.json_out = (dir_ / "eight.json").string();
  eight.threads = 8;
  const RunOutcome run_eight = run_driver(registry, eight, std::cout);
  ASSERT_EQ(run_eight.exit_code, 0);

  // Identical cache keys...
  ASSERT_EQ(run_one.experiments.size(), 1u);
  ASSERT_EQ(run_eight.experiments.size(), 1u);
  EXPECT_EQ(run_one.experiments[0].key_hex, run_eight.experiments[0].key_hex);
  // ...identical stored entry bytes...
  const fs::path entry1 =
      dir_ / "cache1" / (run_one.experiments[0].key_hex + ".vdc");
  const fs::path entry8 =
      dir_ / "cache8" / (run_eight.experiments[0].key_hex + ".vdc");
  EXPECT_EQ(slurp(entry1), slurp(entry8));
  // ...identical JSON exports.
  EXPECT_EQ(slurp(dir_ / "one.json"), slurp(dir_ / "eight.json"));
}

// --- resilience supervisor ------------------------------------------------

TEST(ParseArgsTest, ParsesResilienceFlags) {
  const char* argv[] = {"vdbench",           "--retries=2",
                        "--retry-backoff-ms", "50",
                        "--timeout-sec=1.5",  "--fail-fast",
                        "--resume",           "prev.json"};
  std::ostringstream err;
  bool help = false;
  const auto options =
      parse_args(static_cast<int>(std::size(argv)), argv, err, &help);
  ASSERT_TRUE(options.has_value()) << err.str();
  EXPECT_EQ(options->retries, 2u);
  EXPECT_EQ(options->retry_backoff_ms, 50u);
  EXPECT_DOUBLE_EQ(options->timeout_sec, 1.5);
  EXPECT_TRUE(options->fail_fast);
  EXPECT_EQ(options->resume_path, "prev.json");
}

TEST(ParseArgsTest, RejectsBadResilienceValues) {
  std::ostringstream err;
  bool help = false;
  const char* bad_retries[] = {"vdbench", "--retries=-1"};
  EXPECT_FALSE(parse_args(2, bad_retries, err, &help).has_value());
  const char* bad_timeout[] = {"vdbench", "--timeout-sec=0"};
  EXPECT_FALSE(parse_args(2, bad_timeout, err, &help).has_value());
  const char* bad_backoff[] = {"vdbench", "--retry-backoff-ms=ten"};
  EXPECT_FALSE(parse_args(2, bad_backoff, err, &help).has_value());
}

// A registry whose "flaky" experiment fails its first `failures` attempts,
// then succeeds with output identical to the always-healthy variant.
ExperimentRegistry flaky_registry(std::shared_ptr<int> remaining_failures) {
  ExperimentRegistry registry;
  registry.add({"f1", "fails then recovers", "flaky{n=1}", true,
                [remaining_failures](ExperimentContext& ctx) {
                  if (*remaining_failures > 0) {
                    --*remaining_failures;
                    throw std::runtime_error("transient failure");
                  }
                  ctx.out << "f1 report line\n";
                  ctx.add_artifact("f1_data.json", "{\"v\":1}\n");
                }});
  return registry;
}

TEST_F(DriverTest, RetryRecoversAndResultIsByteIdenticalToCleanRun) {
  DriverOptions options = base_options();
  options.quiet = true;
  options.retries = 2;
  options.retry_backoff_ms = 0;

  options.json_out = (dir_ / "clean.json").string();
  options.cache_dir = (dir_ / "cache_clean").string();
  const RunOutcome clean =
      run_driver(flaky_registry(std::make_shared<int>(0)), options, std::cout);
  ASSERT_EQ(clean.exit_code, kExitOk);

  options.json_out = (dir_ / "recovered.json").string();
  options.cache_dir = (dir_ / "cache_recovered").string();
  std::ostringstream out;
  const RunOutcome recovered =
      run_driver(flaky_registry(std::make_shared<int>(2)), options, out);
  ASSERT_EQ(recovered.exit_code, kExitOk);
  ASSERT_EQ(recovered.experiments.size(), 1u);
  const ExperimentOutcome& outcome = recovered.experiments[0];
  ASSERT_EQ(outcome.attempts.size(), 3u);
  EXPECT_EQ(outcome.attempts[0].result, "exception");
  EXPECT_EQ(outcome.attempts[1].result, "exception");
  EXPECT_EQ(outcome.attempts[2].result, "ok");
  EXPECT_NE(out.str().find("attempt 1/3 failed [exception]"),
            std::string::npos);
  // The recovered run's export is byte-identical to the clean run's.
  EXPECT_EQ(slurp(dir_ / "clean.json"), slurp(dir_ / "recovered.json"));
}

TEST_F(DriverTest, ExhaustedRetriesFailTheExperiment) {
  DriverOptions options = base_options();
  options.quiet = true;
  options.retries = 1;
  options.retry_backoff_ms = 0;
  std::ostringstream out;
  const RunOutcome run = run_driver(
      flaky_registry(std::make_shared<int>(5)), options, out);
  EXPECT_EQ(run.exit_code, kExitUnusable);  // the only experiment failed
  ASSERT_EQ(run.experiments.size(), 1u);
  EXPECT_EQ(run.experiments[0].attempts.size(), 2u);
  EXPECT_EQ(run.experiments[0].error_class, "exception");
}

ExperimentRegistry half_broken_registry() {
  ExperimentRegistry registry;
  registry.add({"ok1", "healthy", "hb{n=1}", true,
                [](ExperimentContext& ctx) { ctx.out << "ok1 line\n"; }});
  registry.add({"bad", "always fails", "hb{n=2}", true,
                [](ExperimentContext&) {
                  throw std::runtime_error("permanently broken");
                }});
  registry.add({"ok2", "healthy", "hb{n=3}", true,
                [](ExperimentContext& ctx) { ctx.out << "ok2 line\n"; }});
  return registry;
}

TEST_F(DriverTest, PartialRunExitsThreeAndStillExports) {
  DriverOptions options = base_options();
  options.quiet = true;
  options.json_out = (dir_ / "partial.json").string();
  std::ostringstream out;
  const RunOutcome run =
      run_driver(half_broken_registry(), options, out);
  EXPECT_EQ(run.exit_code, kExitPartial);
  EXPECT_EQ(run.status, "partial");
  EXPECT_EQ(run.failed, 1u);
  ASSERT_EQ(run.experiments.size(), 3u);  // study continued past the failure

  // The export carries the successes AND the per-experiment error records.
  const std::string exported = slurp(dir_ / "partial.json");
  ASSERT_FALSE(exported.empty());
  EXPECT_NE(exported.find("ok1 line"), std::string::npos);
  EXPECT_NE(exported.find("ok2 line"), std::string::npos);
  EXPECT_NE(exported.find("\"experiment\":\"bad\""), std::string::npos);
  EXPECT_NE(exported.find("\"error_class\":\"exception\""),
            std::string::npos);

  // So does the manifest, with the full attempt history.
  const std::string manifest = slurp(dir_ / "manifest.json");
  EXPECT_NE(manifest.find("\"status\":\"partial\""), std::string::npos);
  EXPECT_NE(manifest.find("\"error\":\"permanently broken\""),
            std::string::npos);
}

TEST_F(DriverTest, FailFastAbortsOnFirstFailure) {
  DriverOptions options = base_options();
  options.quiet = true;
  options.fail_fast = true;
  std::ostringstream out;
  const RunOutcome run =
      run_driver(half_broken_registry(), options, out);
  EXPECT_EQ(run.exit_code, kExitUnusable);
  ASSERT_EQ(run.experiments.size(), 2u);  // ok1, bad — ok2 never ran
  EXPECT_NE(out.str().find("--fail-fast"), std::string::npos);
}

TEST_F(DriverTest, PartialRunAndColdCacheReportBothConditions) {
  DriverOptions options = base_options();
  options.quiet = true;
  options.min_hit_rate = 0.9;  // cold run: guaranteed violation
  std::ostringstream out;
  const RunOutcome run =
      run_driver(half_broken_registry(), options, out);
  EXPECT_EQ(run.exit_code, kExitPartial);
  EXPECT_FALSE(run.hit_rate_ok);  // the violation is no longer masked
  EXPECT_NE(out.str().find("below required"), std::string::npos);
  EXPECT_NE(out.str().find("run partial"), std::string::npos);
}

TEST_F(DriverTest, UnreadableResumeManifestIsAUsageError) {
  DriverOptions options = base_options();
  options.resume_path = (dir_ / "nonexistent.json").string();
  std::ostringstream out;
  EXPECT_EQ(run_driver(toy_registry(), options, out).exit_code, kExitUsage);

  std::ofstream(dir_ / "garbage.json") << "not a manifest";
  options.resume_path = (dir_ / "garbage.json").string();
  EXPECT_EQ(run_driver(toy_registry(), options, out).exit_code, kExitUsage);
}

TEST_F(DriverTest, ResumeReplaysRecordedSuccessesAndRerunsFailures) {
  DriverOptions options = base_options();
  options.quiet = true;

  // First run: ok1/ok2 succeed, bad fails — partial manifest on disk.
  std::ostringstream first_out;
  const RunOutcome first =
      run_driver(half_broken_registry(), options, first_out);
  ASSERT_EQ(first.exit_code, kExitPartial);

  // "Fix the bug" (a registry where bad now succeeds) and resume.
  ExperimentRegistry fixed;
  fixed.add({"ok1", "healthy", "hb{n=1}", true,
             [](ExperimentContext& ctx) { ctx.out << "ok1 line\n"; }});
  fixed.add({"bad", "now fixed", "hb{n=2}", true,
             [](ExperimentContext& ctx) { ctx.out << "bad fixed line\n"; }});
  fixed.add({"ok2", "healthy", "hb{n=3}", true,
             [](ExperimentContext& ctx) { ctx.out << "ok2 line\n"; }});
  DriverOptions resume = options;
  resume.resume_path = (dir_ / "manifest.json").string();
  resume.manifest_path = (dir_ / "manifest2.json").string();
  std::ostringstream out;
  const RunOutcome second = run_driver(fixed, resume, out);
  EXPECT_EQ(second.exit_code, kExitOk);
  ASSERT_EQ(second.experiments.size(), 3u);
  // ok1/ok2 replay from the cache; bad recomputes.
  EXPECT_EQ(second.experiments[0].source, ExperimentOutcome::Source::kCacheHit);
  EXPECT_TRUE(second.experiments[0].resumed);
  EXPECT_EQ(second.experiments[1].source, ExperimentOutcome::Source::kComputed);
  EXPECT_EQ(second.experiments[2].source, ExperimentOutcome::Source::kCacheHit);
  EXPECT_NE(out.str().find("resuming from"), std::string::npos);

  // The new manifest carries both runs' attempts: the prior failed attempt
  // (flagged prior) and this run's successful one, each with a timing.
  const std::string manifest = slurp(dir_ / "manifest2.json");
  EXPECT_NE(manifest.find("\"prior\":true"), std::string::npos);
  EXPECT_NE(manifest.find("\"result\":\"exception\""), std::string::npos);
  ASSERT_EQ(second.experiments[1].attempts.size(), 2u);
  EXPECT_TRUE(second.experiments[1].attempts[0].prior);
  EXPECT_EQ(second.experiments[1].attempts[0].result, "exception");
  EXPECT_EQ(second.experiments[1].attempts[1].result, "ok");
  EXPECT_GE(second.experiments[1].attempts[1].seconds, 0.0);
}

TEST_F(DriverTest, ManifestIsPublishedIncrementallyDuringTheRun) {
  // The second experiment's body reads the manifest off disk mid-run: the
  // first experiment must already be recorded (and flagged incomplete) —
  // that is the crash-safety window --resume depends on.
  const fs::path manifest_path = dir_ / "manifest.json";
  std::string mid_run_manifest;
  ExperimentRegistry registry;
  registry.add({"a1", "first", "inc{n=1}", true,
                [](ExperimentContext& ctx) { ctx.out << "a1 line\n"; }});
  registry.add({"a2", "spies on the manifest", "inc{n=2}", true,
                [&](ExperimentContext& ctx) {
                  mid_run_manifest = slurp(manifest_path);
                  ctx.out << "a2 line\n";
                }});
  DriverOptions options = base_options();
  options.quiet = true;
  ASSERT_EQ(run_driver(registry, options, std::cout).exit_code, kExitOk);
  EXPECT_NE(mid_run_manifest.find("\"id\":\"a1\""), std::string::npos);
  EXPECT_NE(mid_run_manifest.find("\"complete\":false"), std::string::npos);
  // The final manifest is complete and records both experiments.
  const std::string final_manifest = slurp(manifest_path);
  EXPECT_NE(final_manifest.find("\"complete\":true"), std::string::npos);
  EXPECT_NE(final_manifest.find("\"id\":\"a2\""), std::string::npos);
}

TEST_F(DriverTest, WatchdogCancelsARunawayExperiment) {
  ExperimentRegistry registry;
  registry.add({"slow", "cooperatively hangs", "slow{}", true,
                [](ExperimentContext& ctx) {
                  // Parallel tasks poll the cancellation token between
                  // claims; the watchdog drains the loop via Cancelled.
                  stats::parallel_for_indexed(1u << 20, [&](std::size_t) {
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(50));
                  });
                  ctx.out << "never reached\n";
                }});
  DriverOptions options = base_options();
  options.quiet = true;
  options.timeout_sec = 0.2;
  std::ostringstream out;
  const RunOutcome run = run_driver(registry, options, out);
  EXPECT_EQ(run.exit_code, kExitUnusable);
  ASSERT_EQ(run.experiments.size(), 1u);
  EXPECT_EQ(run.experiments[0].error_class, "timeout");
  EXPECT_NE(run.experiments[0].error.find("exceeded --timeout-sec"),
            std::string::npos);
}

}  // namespace
}  // namespace vdbench::cli
