#include "fault/injector.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <string_view>

namespace vdbench::fault {
namespace {

TEST(InjectorParseTest, ParsesFullGrammar) {
  const auto rules = Injector::parse(
      "cache.write=io_error@3; experiment.body=throw@e13:1 ;"
      "executor.task=timeout@17:2x3;cache.read=corrupt");
  ASSERT_EQ(rules.size(), 4u);
  EXPECT_EQ(rules[0].point, "cache.write");
  EXPECT_EQ(rules[0].action, Action::kIoError);
  EXPECT_EQ(rules[0].key, "");
  EXPECT_EQ(rules[0].trigger, 3u);
  EXPECT_EQ(rules[0].repeat, 1u);
  EXPECT_EQ(rules[1].point, "experiment.body");
  EXPECT_EQ(rules[1].action, Action::kThrow);
  EXPECT_EQ(rules[1].key, "e13");
  EXPECT_EQ(rules[1].trigger, 1u);
  EXPECT_EQ(rules[2].key, "17");
  EXPECT_EQ(rules[2].trigger, 2u);
  EXPECT_EQ(rules[2].repeat, 3u);
  EXPECT_EQ(rules[3].action, Action::kCorrupt);
  EXPECT_EQ(rules[3].trigger, 0u);  // fires on every hit
}

TEST(InjectorParseTest, RejectsMalformedSpecs) {
  EXPECT_THROW(Injector::parse("nonsense"), std::invalid_argument);
  EXPECT_THROW(Injector::parse("bogus.point=throw"), std::invalid_argument);
  EXPECT_THROW(Injector::parse("cache.read=explode"), std::invalid_argument);
  EXPECT_THROW(Injector::parse("cache.read=throw@"), std::invalid_argument);
  EXPECT_THROW(Injector::parse("cache.read=throw@0"), std::invalid_argument);
  EXPECT_THROW(Injector::parse("cache.read=throw@:3"), std::invalid_argument);
  EXPECT_THROW(Injector::parse("cache.read=throw@e1:x2"),
               std::invalid_argument);
  EXPECT_TRUE(Injector::parse("").empty());
  EXPECT_TRUE(Injector::parse(" ; ; ").empty());
}

TEST(InjectorParseTest, ErrorsNameTheClauseAndItsOffset) {
  // A multi-clause grid is only debuggable when the error pinpoints the
  // offending clause: its text verbatim and its byte offset in the spec.
  const auto message_of = [](std::string_view spec) -> std::string {
    try {
      (void)Injector::parse(spec);
    } catch (const std::invalid_argument& error) {
      return error.what();
    }
    return "";
  };

  const std::string first = message_of("bogus.point=throw");
  EXPECT_NE(first.find("'bogus.point=throw'"), std::string::npos) << first;
  EXPECT_NE(first.find("at offset 0"), std::string::npos) << first;

  // The same bad clause in second position reports its real offset
  // (clause text starts after "cache.read=corrupt; " = 20 bytes).
  const std::string second =
      message_of("cache.read=corrupt; bogus.point=throw");
  EXPECT_NE(second.find("'bogus.point=throw'"), std::string::npos) << second;
  EXPECT_NE(second.find("at offset 20"), std::string::npos) << second;

  const std::string action = message_of("cache.read=explode;x=y");
  EXPECT_NE(action.find("'cache.read=explode'"), std::string::npos) << action;
  EXPECT_NE(action.find("unknown action 'explode'"), std::string::npos)
      << action;

  const std::string count =
      message_of("cache.write=io_error@1;cache.read=throw@e1:zz");
  EXPECT_NE(count.find("'cache.read=throw@e1:zz'"), std::string::npos)
      << count;
  EXPECT_NE(count.find("at offset 23"), std::string::npos) << count;
  EXPECT_NE(count.find("'zz'"), std::string::npos) << count;
}

TEST(InjectorTest, DisarmedHitIsANoOp) {
  Injector injector;
  EXPECT_FALSE(injector.armed());
  EXPECT_EQ(injector.hit("cache.read", "e1"), Action::kNone);
  EXPECT_EQ(injector.total_fired(), 0u);
}

TEST(InjectorTest, CountBasedTriggerFiresOnceAtTheScheduledHit) {
  Injector injector;
  injector.arm("cache.write=io_error@3");
  EXPECT_TRUE(injector.armed());
  EXPECT_EQ(injector.hit("cache.write"), Action::kNone);
  EXPECT_EQ(injector.hit("cache.write"), Action::kNone);
  EXPECT_EQ(injector.hit("cache.write"), Action::kIoError);
  EXPECT_EQ(injector.hit("cache.write"), Action::kNone);
  EXPECT_EQ(injector.total_fired(), 1u);
  // Hits on other points never advance this rule's counter.
  EXPECT_EQ(injector.hit("cache.read"), Action::kNone);
}

TEST(InjectorTest, RepeatCountKeepsFiringForTheWholeWindow) {
  Injector injector;
  injector.arm("executor.task=throw@2x3");
  EXPECT_EQ(injector.hit("executor.task"), Action::kNone);
  EXPECT_EQ(injector.hit("executor.task"), Action::kThrow);
  EXPECT_EQ(injector.hit("executor.task"), Action::kThrow);
  EXPECT_EQ(injector.hit("executor.task"), Action::kThrow);
  EXPECT_EQ(injector.hit("executor.task"), Action::kNone);
  EXPECT_EQ(injector.total_fired(), 3u);
}

TEST(InjectorTest, KeyFilterMakesTheScheduleKeySpecific) {
  Injector injector;
  injector.arm("experiment.body=throw@e2:1");
  // Other keys pass through and do not advance the counter.
  EXPECT_EQ(injector.hit("experiment.body", "e1"), Action::kNone);
  EXPECT_EQ(injector.hit("experiment.body", "e3"), Action::kNone);
  EXPECT_EQ(injector.hit("experiment.body", "e2"), Action::kThrow);
  EXPECT_EQ(injector.hit("experiment.body", "e2"), Action::kNone);
}

TEST(InjectorTest, TriggerlessRuleFiresOnEveryHit) {
  Injector injector;
  injector.arm("cache.read=io_error");
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(injector.hit("cache.read", "any"), Action::kIoError);
  EXPECT_EQ(injector.total_fired(), 5u);
}

TEST(InjectorTest, RearmResetsCountersAndDisarmStops) {
  Injector injector;
  injector.arm("cache.write=io_error@1");
  EXPECT_EQ(injector.hit("cache.write"), Action::kIoError);
  injector.arm("cache.write=io_error@1");  // re-arm: schedule restarts
  EXPECT_EQ(injector.hit("cache.write"), Action::kIoError);
  injector.disarm();
  EXPECT_FALSE(injector.armed());
  EXPECT_EQ(injector.hit("cache.write"), Action::kNone);
}

TEST(InjectorTest, FirstMatchingRuleWinsButAllCountersAdvance) {
  Injector injector;
  injector.arm("cache.read=io_error@2;cache.read=corrupt@2");
  EXPECT_EQ(injector.hit("cache.read"), Action::kNone);
  // Both rules fire on hit 2; the first clause's action is reported, but
  // both counters advanced so the schedule stays deterministic.
  EXPECT_EQ(injector.hit("cache.read"), Action::kIoError);
  EXPECT_EQ(injector.hit("cache.read"), Action::kNone);
}

TEST(MutatorTest, FlipOneBitChangesExactlyOneBitDeterministically) {
  std::string a = "payload bytes payload bytes";
  std::string b = a;
  flip_one_bit(a, 7);
  flip_one_bit(b, 7);
  EXPECT_EQ(a, b);          // same salt, same flip
  EXPECT_NE(a, "payload bytes payload bytes");
  int bit_diffs = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    unsigned char diff = static_cast<unsigned char>(
        a[i] ^ "payload bytes payload bytes"[i]);
    while (diff != 0) {
      bit_diffs += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(bit_diffs, 1);
  std::string empty;
  flip_one_bit(empty, 0);  // no-op, no crash
  EXPECT_TRUE(empty.empty());
}

TEST(MutatorTest, TruncateTailHalvesTheBuffer) {
  std::string bytes(10, 'x');
  truncate_tail(bytes);
  EXPECT_EQ(bytes.size(), 5u);
  std::string one(1, 'x');
  truncate_tail(one);
  EXPECT_TRUE(one.empty());
}

}  // namespace
}  // namespace vdbench::fault
