// Edge cases the MiniSAST lexer shares with vdlint's C++ scanner now that
// both run on lint::SourceCursor: CRLF line accounting, unterminated
// literals at EOF, comments that run to EOF, and pathological identifier
// lengths. Guarded by an E17-export byte-identity digest — the lexer
// rewrite onto the shared cursor must not move a single byte of the
// study's real-analyzer export.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "cache/hash.h"
#include "cli/driver.h"
#include "experiments.h"
#include "sast/lexer.h"

namespace vdbench::sast {
namespace {

TEST(LexerEdgeTest, CrlfSourcesCountLinesLikeLfSources) {
  // The error line proves '\r' was treated as whitespace, not a line.
  try {
    (void)lex("let a = 1;\r\nlet b = 2;\r\nlet s = \"open;");
    FAIL() << "expected LexError";
  } catch (const LexError& error) {
    EXPECT_STREQ(error.what(), "line 3: unterminated string literal");
  }
  const std::vector<Token> tokens = lex("fn f() {\r\n  let x = 3;\r\n}\r\n");
  ASSERT_GE(tokens.size(), 6u);
  EXPECT_EQ(tokens[4].line, 1u);  // '{' still on line 1
  EXPECT_EQ(tokens[5].line, 2u);  // 'let' opens line 2
}

TEST(LexerEdgeTest, UnterminatedStringAtExactEofThrows) {
  try {
    (void)lex("let s = \"runs off the end");
    FAIL() << "expected LexError";
  } catch (const LexError& error) {
    EXPECT_STREQ(error.what(), "line 1: unterminated string literal");
  }
  // A string stopped by a newline reports the line it started on.
  try {
    (void)lex("\n\nlet s = \"broken\nlet t = 1;");
    FAIL() << "expected LexError";
  } catch (const LexError& error) {
    EXPECT_STREQ(error.what(), "line 3: unterminated string literal");
  }
}

TEST(LexerEdgeTest, CommentRunningToEofProducesOnlyEofToken) {
  const std::vector<Token> tokens = lex("# trailing comment with no newline");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEndOfFile);
  const std::vector<Token> after = lex("let a = 1; # same-line comment");
  ASSERT_EQ(after.size(), 6u);
  EXPECT_EQ(after[5].type, TokenType::kEndOfFile);
}

TEST(LexerEdgeTest, MaximalLengthIdentifiersSurviveIntact) {
  const std::string long_name(4096, 'x');
  const std::vector<Token> tokens = lex("let " + long_name + " = 1;");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[1].type, TokenType::kIdent);
  EXPECT_EQ(tokens[1].text, long_name);
  // Keyword prefixes embedded in longer identifiers stay identifiers.
  const std::vector<Token> keywordish = lex("let fnord = returned;");
  EXPECT_EQ(keywordish[1].type, TokenType::kIdent);
  EXPECT_EQ(keywordish[1].text, "fnord");
  EXPECT_EQ(keywordish[3].type, TokenType::kIdent);
  EXPECT_EQ(keywordish[3].text, "returned");
}

// The lexer feeds E17's real-analyzer study; its tokenisation is part of
// the byte-identity surface. This digest pins the full --json-out export
// of e17 under the logical clock. If an INTENTIONAL experiment or export
// change moves it, rerun this test and update the constant from the
// failure message; an unintentional move is a determinism regression.
inline constexpr std::uint64_t kE17ExportDigest = 0x658aa8c0ae0823b6ULL;

TEST(LexerEdgeTest, E17ExportBytesMatchRecordedDigest) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "vdlint_e17_digest_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  cli::DriverOptions options;
  options.experiments = "e17";
  options.quiet = true;
  options.cache_dir = (dir / "cache").string();
  options.manifest_path = (dir / "manifest.json").string();
  options.artifact_dir = dir.string();
  options.json_out = (dir / "export.json").string();
  options.threads = 1;
  std::uint64_t tick = 0;
  options.clock = [&tick] { return ++tick; };

  const cli::ExperimentRegistry registry = bench::study_registry();
  const cli::RunOutcome outcome =
      cli::run_driver(registry, options, std::cout);
  ASSERT_EQ(outcome.exit_code, 0);

  std::ifstream in(dir / "export.json", std::ios::binary);
  const std::string bytes{std::istreambuf_iterator<char>(in), {}};
  ASSERT_FALSE(bytes.empty());
  const std::uint64_t digest = cache::fnv1a64(bytes);
  EXPECT_EQ(digest, kE17ExportDigest)
      << "e17 export digest changed: 0x" << std::hex << digest
      << " — every byte of the export moved; if intentional, update "
         "kE17ExportDigest in tests/sast/lexer_edge_test.cpp";
  fs::remove_all(dir);
}

}  // namespace
}  // namespace vdbench::sast
