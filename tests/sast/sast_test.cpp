#include "sast/analyzer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "sast/lexer.h"
#include "sast/parser.h"

namespace vdbench::sast {
namespace {

// ---------------------------------------------------------------- lexer ---

TEST(LexerTest, TokenizesKeywordsLiteralsAndPunctuation) {
  const std::vector<Token> tokens =
      lex("fn f(x) {\n  let q = concat(\"a b\", 42);\n  return q;\n}\n");
  ASSERT_FALSE(tokens.empty());
  EXPECT_EQ(tokens.front().type, TokenType::kFn);
  EXPECT_EQ(tokens.back().type, TokenType::kEndOfFile);

  std::size_t strings = 0;
  std::size_t numbers = 0;
  for (const Token& t : tokens) {
    if (t.type == TokenType::kString) {
      ++strings;
      EXPECT_EQ(t.text, "a b");  // contents unquoted
      EXPECT_EQ(t.line, 2u);
    }
    if (t.type == TokenType::kNumber) {
      ++numbers;
      EXPECT_EQ(t.text, "42");
    }
  }
  EXPECT_EQ(strings, 1u);
  EXPECT_EQ(numbers, 1u);
}

TEST(LexerTest, SkipsCommentsToEndOfLine) {
  const std::vector<Token> tokens = lex("# header fn let \"x\nfn f() {}\n");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].type, TokenType::kFn);
  EXPECT_EQ(tokens[0].line, 2u);
}

TEST(LexerTest, RejectsMalformedInput) {
  EXPECT_THROW(lex("let s = \"unterminated;"), LexError);
  EXPECT_THROW(lex("fn f() { @ }"), LexError);
}

// --------------------------------------------------------------- parser ---

TEST(ParserTest, RoundTripsCanonicalSourceExactly) {
  const std::string canonical =
      "fn helper(x, y) {\n"
      "  let q = concat(x, \"suffix\");\n"
      "  q = trim(q);\n"
      "  return q;\n"
      "}\n"
      "fn site_0() {\n"
      "  let id = input(\"id\");\n"
      "  exec_sql(helper(id, 7));\n"
      "}\n";
  EXPECT_EQ(to_source(parse(canonical)), canonical);
}

TEST(ParserTest, RoundTripIsIdempotentOnNoisyLayout) {
  const std::string noisy =
      "# comment\nfn f ( a )\n{ let b=concat(a,\"z\") ;\nreturn b ; }";
  const std::string once = to_source(parse(noisy));
  EXPECT_EQ(to_source(parse(once)), once);
}

TEST(ParserTest, ReportsErrorsWithLineNumbers) {
  EXPECT_THROW(parse("fn f( {"), ParseError);
  EXPECT_THROW(parse("fn f() { let = 3; }"), ParseError);
  EXPECT_THROW(parse("let x = 1;"), ParseError);  // statement outside fn
}

// ---------------------------------------------------------------- taint ---

std::vector<SinkFlow> flows_of(std::string_view source,
                               const TaintConfig& config = TaintConfig{}) {
  const Program program = parse(source);
  const Function* entry = program.find("site_0");
  EXPECT_NE(entry, nullptr);
  return analyze_function(program, *entry, config);
}

TEST(TaintTest, TaintSurvivesConcatWithLiterals) {
  const auto flows = flows_of(
      "fn site_0() {\n"
      "  let id = input(\"id\");\n"
      "  let sql = concat(\"SELECT \", id);\n"
      "  exec_sql(sql);\n"
      "}\n");
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].sink, "exec_sql");
  EXPECT_EQ(flows[0].function_name, "site_0");
  ASSERT_EQ(flows[0].args.size(), 1u);
  EXPECT_TRUE(flows[0].args[0].unsanitized_for(Channel::kSql));
}

TEST(TaintTest, SanitizerKillsItsChannelOnly) {
  const auto flows = flows_of(
      "fn site_0() {\n"
      "  let raw = input(\"q\");\n"
      "  let safe = sanitize_sql(raw);\n"
      "  exec_sql(concat(\"SELECT \", safe));\n"
      "}\n");
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_FALSE(flows[0].args[0].unsanitized_for(Channel::kSql));
  // Still live for every other channel — sanitizers are channel-specific.
  EXPECT_TRUE(flows[0].args[0].unsanitized_for(Channel::kHtml));
}

TEST(TaintTest, HelperInliningStopsAtDepthBudget) {
  const std::string two_deep =
      "fn w0_2(x) {\n  let y = concat(x, \"\");\n  return y;\n}\n"
      "fn w0_1(x) {\n  let y = w0_2(x);\n  return y;\n}\n"
      "fn site_0() {\n"
      "  let id = input(\"id\");\n"
      "  let t = w0_1(id);\n"
      "  exec_sql(t);\n"
      "}\n";
  const std::string three_deep =
      "fn w0_3(x) {\n  let y = concat(x, \"\");\n  return y;\n}\n"
      "fn w0_2(x) {\n  let y = w0_3(x);\n  return y;\n}\n"
      "fn w0_1(x) {\n  let y = w0_2(x);\n  return y;\n}\n"
      "fn site_0() {\n"
      "  let id = input(\"id\");\n"
      "  let t = w0_1(id);\n"
      "  exec_sql(t);\n"
      "}\n";
  const auto shallow = flows_of(two_deep);
  ASSERT_EQ(shallow.size(), 1u);
  EXPECT_TRUE(shallow[0].args[0].tainted);
  EXPECT_EQ(shallow[0].args[0].helper_depth, 2u);

  // One hop past the budget: taint is dropped, deterministically.
  const auto deep = flows_of(three_deep);
  ASSERT_EQ(deep.size(), 1u);
  EXPECT_FALSE(deep[0].args[0].tainted);

  // A larger budget recovers the flow — the miss is the budget, not noise.
  const auto wide = flows_of(three_deep, TaintConfig{/*max_call_depth=*/3});
  ASSERT_EQ(wide.size(), 1u);
  EXPECT_TRUE(wide[0].args[0].tainted);
  EXPECT_EQ(wide[0].args[0].helper_depth, 3u);
}

TEST(TaintTest, SinksInsideHelpersAreNotRecorded) {
  const auto flows = flows_of(
      "fn copy0(x) {\n  memcpy_buf(\"buf64\", x);\n  return x;\n}\n"
      "fn site_0() {\n"
      "  let data = input(\"data\");\n"
      "  let r = copy0(data);\n"
      "  log_msg(r);\n"
      "}\n");
  EXPECT_TRUE(flows.empty());  // summary-only interprocedural analysis
}

TEST(TaintTest, TransformFlagsAndLiteralPedigreeAreTracked) {
  const auto flows = flows_of(
      "fn site_0() {\n"
      "  let n = to_int(input(\"page\"));\n"
      "  let secret = concat(\"hun\", \"ter2\");\n"
      "  auth_check(secret, \"hunter2\");\n"
      "  exec_sql(concat(\"LIMIT \", n));\n"
      "}\n");
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_EQ(flows[0].sink, "auth_check");
  EXPECT_EQ(flows[0].args[0].literal, LiteralKind::kLiteralConcat);
  EXPECT_EQ(flows[0].args[1].literal, LiteralKind::kLiteral);
  EXPECT_EQ(flows[1].sink, "exec_sql");
  EXPECT_TRUE(flows[1].args[0].through_to_int);
}

// ---------------------------------------------------------------- rules ---

FileAnalysis analyze(std::string_view source,
                     AnalyzerConfig config = AnalyzerConfig{}) {
  return Analyzer(config, RuleRegistry::default_rules())
      .analyze_source(source);
}

TEST(RulesTest, RegistryRejectsBadRules) {
  RuleRegistry registry = RuleRegistry::default_rules();
  EXPECT_THROW(
      registry.add({"", vdsim::VulnClass::kXss, "render_html", "",
                    [](const SinkFlow&) { return std::nullopt; }}),
      std::invalid_argument);
  EXPECT_THROW(
      registry.add({"SQLI-001", vdsim::VulnClass::kSqlInjection, "exec_sql",
                    "", [](const SinkFlow&) { return std::nullopt; }}),
      std::invalid_argument);
  EXPECT_THROW(registry.add({"NEW-001", vdsim::VulnClass::kXss, "render_html",
                             "", nullptr}),
               std::invalid_argument);
}

TEST(RulesTest, XssRuleIsBlindToFormatBuiltMarkup) {
  const std::string plain =
      "fn site_0() {\n"
      "  let name = input(\"name\");\n"
      "  let page = concat(\"<h1>\", name);\n"
      "  render_html(page);\n"
      "}\n";
  const std::string formatted =
      "fn site_0() {\n"
      "  let name = input(\"name\");\n"
      "  let page = format(\"<h1>{}</h1>\", name);\n"
      "  render_html(page);\n"
      "}\n";
  const FileAnalysis caught = analyze(plain);
  ASSERT_EQ(caught.findings.size(), 1u);
  EXPECT_EQ(caught.findings[0].rule_id, "XSS-001");
  EXPECT_DOUBLE_EQ(caught.findings[0].confidence, 0.88);

  const FileAnalysis missed = analyze(formatted);
  EXPECT_TRUE(missed.findings.empty());
  EXPECT_EQ(missed.sink_flows, 1u);  // the flow exists; the rule declines
}

TEST(RulesTest, PathRuleTrustsToLower) {
  const std::string washed =
      "fn site_0() {\n"
      "  let f = input(\"file\");\n"
      "  let lower = to_lower(f);\n"
      "  open_file(concat(\"/srv/\", lower));\n"
      "}\n";
  EXPECT_TRUE(analyze(washed).findings.empty());

  const std::string direct =
      "fn site_0() {\n"
      "  let f = input(\"file\");\n"
      "  open_file(concat(\"/srv/\", f));\n"
      "}\n";
  const FileAnalysis caught = analyze(direct);
  ASSERT_EQ(caught.findings.size(), 1u);
  EXPECT_EQ(caught.findings[0].rule_id, "PATH-001");
}

TEST(RulesTest, CredRuleIsPurelySyntactic) {
  const FileAnalysis literal = analyze(
      "fn site_0() {\n  auth_check(\"admin\", \"hunter2\");\n}\n");
  ASSERT_EQ(literal.findings.size(), 1u);
  EXPECT_EQ(literal.findings[0].rule_id, "CRED-001");

  const FileAnalysis concatenated = analyze(
      "fn site_0() {\n"
      "  let secret = concat(\"hun\", \"ter2\");\n"
      "  auth_check(\"admin\", secret);\n"
      "}\n");
  EXPECT_TRUE(concatenated.findings.empty());
}

TEST(RulesTest, NoRuleCoversCommandInjection) {
  const FileAnalysis analysis = analyze(
      "fn site_0() {\n"
      "  let host = input(\"host\");\n"
      "  run_cmd(concat(\"ping \", host));\n"
      "}\n");
  EXPECT_EQ(analysis.sink_flows, 1u);
  EXPECT_TRUE(analysis.findings.empty());  // registry-level blind spot
}

TEST(RulesTest, ConfidenceErodesWithHelperDepthAndToInt) {
  const FileAnalysis via_helpers = analyze(
      "fn w0_2(x) {\n  let y = concat(x, \"\");\n  return y;\n}\n"
      "fn w0_1(x) {\n  let y = w0_2(x);\n  return y;\n}\n"
      "fn site_0() {\n"
      "  let id = input(\"id\");\n"
      "  exec_sql(w0_1(id));\n"
      "}\n");
  ASSERT_EQ(via_helpers.findings.size(), 1u);
  EXPECT_DOUBLE_EQ(via_helpers.findings[0].confidence, 0.92 - 2 * 0.04);

  const FileAnalysis typed = analyze(
      "fn site_0() {\n"
      "  let n = to_int(input(\"page\"));\n"
      "  exec_sql(concat(\"LIMIT \", n));\n"
      "}\n");
  ASSERT_EQ(typed.findings.size(), 1u);
  EXPECT_DOUBLE_EQ(typed.findings[0].confidence, 0.92 - 0.25);
}

// ------------------------------------------------------------- analyzer ---

TEST(AnalyzerTest, ConfidenceFloorSuppressesFindings) {
  const std::string typed =
      "fn site_0() {\n"
      "  let n = to_int(input(\"page\"));\n"
      "  exec_sql(concat(\"LIMIT \", n));\n"
      "}\n";
  AnalyzerConfig strict;
  strict.min_confidence = 0.70;  // above the 0.67 to_int confidence
  const FileAnalysis analysis = analyze(typed, strict);
  EXPECT_TRUE(analysis.findings.empty());
  EXPECT_EQ(analysis.suppressed, 1u);
}

TEST(AnalyzerTest, ConfigValidationRejectsNanAndOutOfRange) {
  AnalyzerConfig config;
  config.min_confidence = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.min_confidence = 1.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.min_confidence = 0.30;
  EXPECT_NO_THROW(config.validate());
}

TEST(AnalyzerTest, OutputIsDeterministicAcrossRuns) {
  const std::string source =
      "fn site_0() {\n"
      "  let id = input(\"id\");\n"
      "  exec_sql(concat(\"SELECT \", id));\n"
      "}\n"
      "fn site_1() {\n"
      "  let f = input(\"file\");\n"
      "  open_file(f);\n"
      "}\n";
  const FileAnalysis a = analyze(source);
  const FileAnalysis b = analyze(source);
  ASSERT_EQ(a.findings.size(), 2u);
  ASSERT_EQ(b.findings.size(), 2u);
  for (std::size_t i = 0; i < a.findings.size(); ++i) {
    EXPECT_EQ(a.findings[i].rule_id, b.findings[i].rule_id);
    EXPECT_EQ(a.findings[i].function_name, b.findings[i].function_name);
    EXPECT_EQ(a.findings[i].line, b.findings[i].line);
    EXPECT_DOUBLE_EQ(a.findings[i].confidence, b.findings[i].confidence);
  }
  EXPECT_EQ(a.findings[0].rule_id, "SQLI-001");  // program order
  EXPECT_EQ(a.findings[1].rule_id, "PATH-001");
}

}  // namespace
}  // namespace vdbench::sast
