#include "vdsim/benchmark.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vdbench::vdsim {
namespace {

BenchmarkDefinition small_definition() {
  BenchmarkDefinition def;
  def.name = "test-benchmark";
  def.primary_metric = core::MetricId::kMcc;
  def.secondary_metrics = {core::MetricId::kRecall};
  def.protocol.workload.num_services = 50;
  def.protocol.workload.prevalence = 0.12;
  def.protocol.runs = 10;
  def.protocol.bootstrap_replicates = 200;
  return def;
}

TEST(BenchmarkDefinitionTest, Validation) {
  BenchmarkDefinition def = small_definition();
  EXPECT_NO_THROW(def.validate());
  def.name.clear();
  EXPECT_THROW(def.validate(), std::invalid_argument);
  def = small_definition();
  def.primary_metric = core::MetricId::kPrevalence;
  EXPECT_THROW(def.validate(), std::invalid_argument);
  def = small_definition();
  def.secondary_metrics = {core::MetricId::kMcc};  // duplicates primary
  EXPECT_THROW(def.validate(), std::invalid_argument);
  def = small_definition();
  def.protocol.runs = 0;
  EXPECT_THROW(def.validate(), std::invalid_argument);
}

TEST(CompactLetterTest, AllDistinctGetOwnLetters) {
  const auto all_significant = [](std::size_t, std::size_t) { return true; };
  const auto groups = compact_letter_groups(3, all_significant);
  EXPECT_EQ(groups, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CompactLetterTest, AllTiedShareOneLetter) {
  const auto none_significant = [](std::size_t, std::size_t) {
    return false;
  };
  const auto groups = compact_letter_groups(4, none_significant);
  EXPECT_EQ(groups, (std::vector<std::string>{"a", "a", "a", "a"}));
}

TEST(CompactLetterTest, OverlappingBandsGetMultipleLetters) {
  // 0~1, 1~2 insignificant, but 0 vs 2 significant: middle item bridges.
  const auto adjacent_only = [](std::size_t i, std::size_t j) {
    return (j > i ? j - i : i - j) > 1;
  };
  const auto groups = compact_letter_groups(3, adjacent_only);
  EXPECT_EQ(groups[0], "a");
  EXPECT_EQ(groups[1], "ab");
  EXPECT_EQ(groups[2], "b");
}

TEST(CompactLetterTest, EmptyAndSingle) {
  const auto any = [](std::size_t, std::size_t) { return true; };
  EXPECT_TRUE(compact_letter_groups(0, any).empty());
  EXPECT_EQ(compact_letter_groups(1, any),
            (std::vector<std::string>{"a"}));
}

TEST(ExecuteBenchmarkTest, RankingSortedAndComplete) {
  stats::Rng rng(1);
  const BenchmarkReport report =
      execute_benchmark(small_definition(), builtin_tools(), rng);
  ASSERT_EQ(report.ranking.size(), builtin_tools().size());
  for (std::size_t i = 0; i < report.ranking.size(); ++i) {
    EXPECT_EQ(report.ranking[i].rank, i + 1);
    EXPECT_FALSE(report.ranking[i].group.empty());
    if (i + 1 < report.ranking.size())
      EXPECT_GE(report.ranking[i].mean, report.ranking[i + 1].mean);
  }
}

TEST(ExecuteBenchmarkTest, ClearGapsSeparateGroups) {
  BenchmarkDefinition def = small_definition();
  const std::vector<ToolProfile> tools = {
      make_archetype_profile(ToolArchetype::kStaticAnalyzer, 0.95, "great"),
      make_archetype_profile(ToolArchetype::kStaticAnalyzer, 0.10, "awful")};
  stats::Rng rng(2);
  const BenchmarkReport report = execute_benchmark(def, tools, rng);
  EXPECT_EQ(report.ranking.front().name, "great");
  EXPECT_NE(report.ranking.front().group, report.ranking.back().group);
}

TEST(ExecuteBenchmarkTest, NearTiesShareAGroupLetter) {
  BenchmarkDefinition def = small_definition();
  const std::vector<ToolProfile> tools = {
      make_archetype_profile(ToolArchetype::kStaticAnalyzer, 0.600, "twin-1"),
      make_archetype_profile(ToolArchetype::kStaticAnalyzer, 0.605,
                             "twin-2")};
  // Deterministic seed chosen away from the ~5% false-positive region of
  // the alpha=0.05 test (near-ties are *expected* to alias occasionally).
  stats::Rng rng(1);
  const BenchmarkReport report = execute_benchmark(def, tools, rng);
  // Some letter must be shared between the statistically identical twins.
  bool shared = false;
  for (const char c : report.ranking[0].group)
    if (report.ranking[1].group.find(c) != std::string::npos) shared = true;
  EXPECT_TRUE(shared);
}

TEST(ExecuteBenchmarkTest, DeterministicGivenSeed) {
  stats::Rng a(4), b(4);
  const BenchmarkReport ra =
      execute_benchmark(small_definition(), builtin_tools(), a);
  const BenchmarkReport rb =
      execute_benchmark(small_definition(), builtin_tools(), b);
  for (std::size_t i = 0; i < ra.ranking.size(); ++i) {
    EXPECT_EQ(ra.ranking[i].name, rb.ranking[i].name);
    EXPECT_DOUBLE_EQ(ra.ranking[i].mean, rb.ranking[i].mean);
    EXPECT_EQ(ra.ranking[i].group, rb.ranking[i].group);
  }
}

TEST(ExecuteBenchmarkTest, RenderContainsEverything) {
  stats::Rng rng(5);
  const BenchmarkReport report =
      execute_benchmark(small_definition(), builtin_tools(), rng);
  const std::string text = report.render();
  EXPECT_NE(text.find("test-benchmark"), std::string::npos);
  EXPECT_NE(text.find("Matthews"), std::string::npos);
  for (const RankedTool& r : report.ranking)
    EXPECT_NE(text.find(r.name), std::string::npos);
  EXPECT_NE(text.find("statistically indistinguishable"), std::string::npos);
}

TEST(ExecuteBenchmarkTest, RejectsBadInput) {
  stats::Rng rng(6);
  EXPECT_THROW(execute_benchmark(small_definition(), {}, rng),
               std::invalid_argument);
  BenchmarkDefinition bad = small_definition();
  bad.name.clear();
  EXPECT_THROW(execute_benchmark(bad, builtin_tools(), rng),
               std::invalid_argument);
}

TEST(ExecuteBenchmarkTest, LowerBetterPrimaryMetricRanksCorrectly) {
  BenchmarkDefinition def = small_definition();
  def.primary_metric = core::MetricId::kNormalizedExpectedCost;
  def.secondary_metrics.clear();
  const std::vector<ToolProfile> tools = {
      make_archetype_profile(ToolArchetype::kStaticAnalyzer, 0.2, "weak"),
      make_archetype_profile(ToolArchetype::kStaticAnalyzer, 0.9, "strong")};
  stats::Rng rng(7);
  const BenchmarkReport report = execute_benchmark(def, tools, rng);
  EXPECT_EQ(report.ranking.front().name, "strong");
  EXPECT_LT(report.ranking.front().mean, report.ranking.back().mean);
}

}  // namespace
}  // namespace vdbench::vdsim
