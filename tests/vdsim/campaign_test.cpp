#include "vdsim/campaign.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vdbench::vdsim {
namespace {

WorkloadSpec small_spec() {
  WorkloadSpec spec;
  spec.num_services = 50;
  spec.prevalence = 0.12;
  return spec;
}

TEST(RankToolsTest, OrdersByUtility) {
  WorkloadSpec spec = small_spec();
  spec.num_services = 250;
  stats::Rng wrng(1);
  const Workload w = generate_workload(spec, wrng);
  const std::vector<ToolProfile> tools = {
      make_archetype_profile(ToolArchetype::kStaticAnalyzer, 0.25, "t-weak"),
      make_archetype_profile(ToolArchetype::kStaticAnalyzer, 0.90, "t-strong"),
      make_archetype_profile(ToolArchetype::kStaticAnalyzer, 0.55, "t-mid"),
  };
  stats::Rng rng(2);
  const auto results = run_benchmarks(tools, w, CostModel{}, rng);
  const auto order = rank_tools_by_metric(results, core::MetricId::kMcc);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 0u);
}

TEST(RankToolsTest, LowerBetterMetricReversed) {
  WorkloadSpec spec = small_spec();
  spec.num_services = 250;
  stats::Rng wrng(3);
  const Workload w = generate_workload(spec, wrng);
  const std::vector<ToolProfile> tools = {
      make_archetype_profile(ToolArchetype::kStaticAnalyzer, 0.9, "strong"),
      make_archetype_profile(ToolArchetype::kStaticAnalyzer, 0.3, "weak"),
  };
  stats::Rng rng(4);
  const auto results = run_benchmarks(tools, w, CostModel{5.0, 1.0}, rng);
  const auto order =
      rank_tools_by_metric(results, core::MetricId::kNormalizedExpectedCost);
  EXPECT_EQ(order[0], 0u);  // strong tool has lower cost -> ranked first
}

TEST(RankToolsTest, UndefinedValuesSortLast) {
  const Workload w = [&] {
    stats::Rng wrng(5);
    return generate_workload(small_spec(), wrng);
  }();
  ToolProfile silent =
      make_archetype_profile(ToolArchetype::kFuzzer, 0.5, "silent");
  silent.sensitivity.fill(0.0);
  silent.fallout = 0.0;  // precision undefined
  const std::vector<ToolProfile> tools = {
      silent,
      make_archetype_profile(ToolArchetype::kStaticAnalyzer, 0.6, "normal"),
  };
  stats::Rng rng(6);
  const auto results = run_benchmarks(tools, w, CostModel{}, rng);
  const auto order =
      rank_tools_by_metric(results, core::MetricId::kPrecision);
  EXPECT_EQ(order.back(), 0u);
}

TEST(RankToolsTest, RejectsDescriptiveMetric) {
  const std::vector<BenchmarkResult> empty;
  EXPECT_THROW(rank_tools_by_metric(empty, core::MetricId::kPrevalence),
               std::invalid_argument);
}

TEST(MetricAgreementTest, MatrixWellFormed) {
  const std::vector<core::MetricId> metrics = {
      core::MetricId::kPrecision, core::MetricId::kRecall,
      core::MetricId::kFMeasure, core::MetricId::kMcc};
  stats::Rng rng(7);
  const AgreementMatrix agreement =
      metric_agreement(metrics, small_spec(), 20, 6, CostModel{}, rng);
  ASSERT_EQ(agreement.metrics.size(), 4u);
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = 0; b < 4; ++b) {
      const double tau = agreement.tau(a, b);
      if (std::isfinite(tau)) {
        EXPECT_GE(tau, -1.0);
        EXPECT_LE(tau, 1.0 + 1e-12);
        EXPECT_NEAR(tau, agreement.tau(b, a), 1e-12);
      }
    }
    if (agreement.valid_populations(a, a) > 0)
      EXPECT_NEAR(agreement.tau(a, a), 1.0, 1e-12);
  }
}

TEST(MetricAgreementTest, CorrelatedMetricsAgreeMoreThanOpposed) {
  // F1 and MCC track each other closely; recall and precision trade off.
  const std::vector<core::MetricId> metrics = {
      core::MetricId::kFMeasure, core::MetricId::kMcc,
      core::MetricId::kRecall, core::MetricId::kPrecision};
  stats::Rng rng(8);
  const AgreementMatrix agreement =
      metric_agreement(metrics, small_spec(), 40, 8, CostModel{}, rng);
  EXPECT_GT(agreement.tau(0, 1), agreement.tau(2, 3));
}

TEST(MetricAgreementTest, RejectsBadArguments) {
  stats::Rng rng(9);
  const std::vector<core::MetricId> one = {core::MetricId::kMcc};
  EXPECT_THROW(metric_agreement(one, small_spec(), 5, 5, CostModel{}, rng),
               std::invalid_argument);
  const std::vector<core::MetricId> with_descriptive = {
      core::MetricId::kMcc, core::MetricId::kPrevalence};
  EXPECT_THROW(metric_agreement(with_descriptive, small_spec(), 5, 5,
                                CostModel{}, rng),
               std::invalid_argument);
  const std::vector<core::MetricId> two = {core::MetricId::kMcc,
                                           core::MetricId::kFMeasure};
  EXPECT_THROW(metric_agreement(two, small_spec(), 0, 5, CostModel{}, rng),
               std::invalid_argument);
  EXPECT_THROW(metric_agreement(two, small_spec(), 5, 2, CostModel{}, rng),
               std::invalid_argument);
}

TEST(PrevalenceSweepTest, AccuracyDriftsRecallDoesNot) {
  const ToolProfile tool =
      make_archetype_profile(ToolArchetype::kStaticAnalyzer, 0.7, "probe");
  WorkloadSpec spec = small_spec();
  spec.num_services = 1500;
  const std::vector<double> grid = {0.01, 0.05, 0.2, 0.4};
  const std::vector<core::MetricId> metrics = {core::MetricId::kAccuracy,
                                               core::MetricId::kRecall};
  stats::Rng rng(10);
  const auto points =
      prevalence_sweep(tool, spec, grid, metrics, CostModel{}, rng);
  ASSERT_EQ(points.size(), grid.size());
  double acc_min = 1.0, acc_max = 0.0, rec_min = 1.0, rec_max = 0.0;
  for (const PrevalencePoint& p : points) {
    acc_min = std::min(acc_min, p.metric_values[0]);
    acc_max = std::max(acc_max, p.metric_values[0]);
    rec_min = std::min(rec_min, p.metric_values[1]);
    rec_max = std::max(rec_max, p.metric_values[1]);
  }
  EXPECT_GT(acc_max - acc_min, 0.05) << "accuracy should drift";
  EXPECT_LT(rec_max - rec_min, 0.06) << "recall should stay flat";
}

TEST(PrevalenceSweepTest, RejectsEmptyGrid) {
  const ToolProfile tool = builtin_tools().front();
  stats::Rng rng(11);
  EXPECT_THROW(prevalence_sweep(tool, small_spec(), {}, {}, CostModel{}, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace vdbench::vdsim
