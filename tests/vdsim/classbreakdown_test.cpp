#include <gtest/gtest.h>

#include <cmath>

#include "vdsim/presets.h"
#include "vdsim/runner.h"

namespace vdbench::vdsim {
namespace {

Workload test_workload(std::uint64_t seed = 1) {
  WorkloadSpec spec;
  spec.num_services = 120;
  spec.prevalence = 0.15;
  stats::Rng rng(seed);
  return generate_workload(spec, rng);
}

TEST(ClassBreakdownTest, CountsTieOutWithOverallConfusion) {
  const Workload w = test_workload();
  const ToolProfile t = builtin_tools().front();
  stats::Rng rng(2);
  const BenchmarkResult r = run_benchmark(t, w, CostModel{}, rng);
  std::uint64_t tp = 0, fn = 0, claimed_fp = 0;
  for (const ClassOutcome& c : r.by_class) {
    tp += c.tp;
    fn += c.fn;
    claimed_fp += c.claimed_fp;
  }
  EXPECT_EQ(tp, r.context.cm.tp);
  EXPECT_EQ(fn, r.context.cm.fn);
  EXPECT_EQ(claimed_fp, r.context.cm.fp);
}

TEST(ClassBreakdownTest, PerClassTotalsMatchGroundTruth) {
  const Workload w = test_workload(3);
  const ToolProfile t = builtin_tools()[1];
  stats::Rng rng(4);
  const BenchmarkResult r = run_benchmark(t, w, CostModel{}, rng);
  for (const VulnClass c : all_vuln_classes()) {
    const ClassOutcome& outcome = r.by_class[vuln_class_index(c)];
    EXPECT_EQ(outcome.vuln_class, c);
    EXPECT_EQ(outcome.tp + outcome.fn, w.vulns_of_class(c));
  }
}

TEST(ClassBreakdownTest, RecallReflectsPerClassSensitivity) {
  // A tool blind to SQL injection but perfect on buffer overflows.
  WorkloadSpec spec;
  spec.num_services = 200;
  spec.prevalence = 0.2;
  spec.class_mix.fill(0.0);
  spec.class_mix[vuln_class_index(VulnClass::kSqlInjection)] = 1.0;
  spec.class_mix[vuln_class_index(VulnClass::kBufferOverflow)] = 1.0;
  stats::Rng wrng(5);
  const Workload w = generate_workload(spec, wrng);
  ToolProfile t = make_archetype_profile(ToolArchetype::kFuzzer, 0.5, "blind");
  t.sensitivity.fill(0.0);
  t.sensitivity[vuln_class_index(VulnClass::kBufferOverflow)] = 1.0;
  t.fallout = 0.0;
  stats::Rng rng(6);
  const BenchmarkResult r = run_benchmark(t, w, CostModel{}, rng);
  EXPECT_DOUBLE_EQ(
      r.by_class[vuln_class_index(VulnClass::kBufferOverflow)].recall(), 1.0);
  EXPECT_DOUBLE_EQ(
      r.by_class[vuln_class_index(VulnClass::kSqlInjection)].recall(), 0.0);
  EXPECT_EQ(r.weakest_class(), VulnClass::kSqlInjection);
  // Macro recall averages the two present classes only.
  EXPECT_NEAR(r.macro_class_recall(), 0.5, 1e-12);
}

TEST(ClassBreakdownTest, AbsentClassRecallIsNaN) {
  WorkloadSpec spec;
  spec.num_services = 50;
  spec.prevalence = 0.1;
  spec.class_mix.fill(0.0);
  spec.class_mix[vuln_class_index(VulnClass::kXss)] = 1.0;
  stats::Rng wrng(7);
  const Workload w = generate_workload(spec, wrng);
  stats::Rng rng(8);
  const BenchmarkResult r =
      run_benchmark(builtin_tools().front(), w, CostModel{}, rng);
  EXPECT_TRUE(std::isnan(
      r.by_class[vuln_class_index(VulnClass::kWeakCrypto)].recall()));
}

TEST(ClassBreakdownTest, WeakestClassThrowsOnCleanWorkload) {
  WorkloadSpec spec;
  spec.num_services = 20;
  spec.prevalence = 0.0;
  stats::Rng wrng(9);
  const Workload w = generate_workload(spec, wrng);
  stats::Rng rng(10);
  const BenchmarkResult r =
      run_benchmark(builtin_tools().front(), w, CostModel{}, rng);
  EXPECT_THROW((void)r.weakest_class(), std::logic_error);
  EXPECT_TRUE(std::isnan(r.macro_class_recall()));
}

TEST(ClassBreakdownTest, ArchetypeBlindSpotsShowUp) {
  // On a memory-error-heavy corpus, a pen tester's weakest class should be
  // a memory class, not an injection class.
  const WorkloadSpec spec =
      preset_spec(WorkloadPreset::kLegacyMonolith, 150);
  stats::Rng wrng(11);
  const Workload w = generate_workload(spec, wrng);
  const ToolProfile pentester = make_archetype_profile(
      ToolArchetype::kPenetrationTester, 0.8, "pt");
  stats::Rng rng(12);
  const BenchmarkResult r = run_benchmark(pentester, w, CostModel{}, rng);
  const VulnClass weakest = r.weakest_class();
  EXPECT_TRUE(weakest == VulnClass::kUseAfterFree ||
              weakest == VulnClass::kIntegerOverflow ||
              weakest == VulnClass::kBufferOverflow ||
              weakest == VulnClass::kWeakCrypto)
      << vuln_class_name(weakest);
}

}  // namespace
}  // namespace vdbench::vdsim
