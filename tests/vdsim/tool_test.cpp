#include "vdsim/tool.h"

#include <gtest/gtest.h>

#include <limits>
#include <set>

namespace vdbench::vdsim {
namespace {

Workload test_workload(std::uint64_t seed = 1, double prevalence = 0.15) {
  WorkloadSpec spec;
  spec.num_services = 60;
  spec.prevalence = prevalence;
  stats::Rng rng(seed);
  return generate_workload(spec, rng);
}

TEST(ToolProfileTest, ValidationCatchesBadFields) {
  ToolProfile t = make_archetype_profile(ToolArchetype::kFuzzer, 0.5, "f");
  EXPECT_NO_THROW(t.validate());
  t.fallout = 1.5;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = make_archetype_profile(ToolArchetype::kFuzzer, 0.5, "f");
  t.sensitivity[0] = -0.1;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = make_archetype_profile(ToolArchetype::kFuzzer, 0.5, "f");
  t.speed_kloc_per_second = 0.0;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = make_archetype_profile(ToolArchetype::kFuzzer, 0.5, "f");
  t.name.clear();
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

TEST(ToolProfileTest, ValidationRejectsNanInEveryNumericField) {
  // NaN fails every ordering, so `< lo || > hi` style checks silently let
  // it through; validate() must use negated-range comparisons instead.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const auto fresh = [] {
    return make_archetype_profile(ToolArchetype::kFuzzer, 0.5, "f");
  };
  ToolProfile t = fresh();
  t.sensitivity[3] = nan;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = fresh();
  t.fallout = nan;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = fresh();
  t.confidence_tp_mean = nan;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = fresh();
  t.confidence_fp_mean = nan;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = fresh();
  t.confidence_sd = nan;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = fresh();
  t.speed_kloc_per_second = nan;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = fresh();
  t.startup_seconds = nan;
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

TEST(ToolProfileTest, ValidationBoundsConfidenceMeans) {
  ToolProfile t = make_archetype_profile(ToolArchetype::kFuzzer, 0.5, "f");
  t.confidence_tp_mean = 1.2;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = make_archetype_profile(ToolArchetype::kFuzzer, 0.5, "f");
  t.confidence_fp_mean = -0.1;
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

TEST(ToolProfileTest, MeanSensitivityWeighted) {
  ToolProfile t = make_archetype_profile(ToolArchetype::kManualReview, 0.5,
                                         "m");
  t.sensitivity.fill(0.0);
  t.sensitivity[0] = 1.0;
  PerClass<double> mix{};
  mix.fill(1.0);
  EXPECT_DOUBLE_EQ(t.mean_sensitivity(mix), 1.0 / kVulnClassCount);
  mix.fill(0.0);
  mix[0] = 1.0;
  EXPECT_DOUBLE_EQ(t.mean_sensitivity(mix), 1.0);
  mix.fill(0.0);
  EXPECT_THROW(t.mean_sensitivity(mix), std::invalid_argument);
}

TEST(ArchetypeTest, QualityImprovesEverything) {
  const ToolProfile weak =
      make_archetype_profile(ToolArchetype::kStaticAnalyzer, 0.2, "weak");
  const ToolProfile strong =
      make_archetype_profile(ToolArchetype::kStaticAnalyzer, 0.9, "strong");
  for (std::size_t c = 0; c < kVulnClassCount; ++c)
    EXPECT_GE(strong.sensitivity[c], weak.sensitivity[c]);
  EXPECT_LT(strong.fallout, weak.fallout);
  EXPECT_GT(strong.confidence_tp_mean - strong.confidence_fp_mean,
            weak.confidence_tp_mean - weak.confidence_fp_mean);
}

TEST(ArchetypeTest, ProfilesReflectFamilyStrengths) {
  const ToolProfile pentest =
      make_archetype_profile(ToolArchetype::kPenetrationTester, 0.7, "pt");
  const ToolProfile fuzzer =
      make_archetype_profile(ToolArchetype::kFuzzer, 0.7, "fz");
  // Pen testers beat fuzzers on SQL injection, fuzzers win on overflows.
  EXPECT_GT(pentest.sensitivity[vuln_class_index(VulnClass::kSqlInjection)],
            fuzzer.sensitivity[vuln_class_index(VulnClass::kSqlInjection)]);
  EXPECT_GT(fuzzer.sensitivity[vuln_class_index(VulnClass::kBufferOverflow)],
            pentest.sensitivity[vuln_class_index(VulnClass::kBufferOverflow)]);
}

TEST(ArchetypeTest, RejectsBadQuality) {
  EXPECT_THROW(make_archetype_profile(ToolArchetype::kFuzzer, -0.1, "x"),
               std::invalid_argument);
  EXPECT_THROW(make_archetype_profile(ToolArchetype::kFuzzer, 1.1, "x"),
               std::invalid_argument);
}

TEST(BuiltinToolsTest, SixDistinctValidTools) {
  const std::vector<ToolProfile> tools = builtin_tools();
  EXPECT_EQ(tools.size(), 6u);
  std::set<std::string> names;
  for (const ToolProfile& t : tools) {
    EXPECT_NO_THROW(t.validate());
    EXPECT_TRUE(names.insert(t.name).second);
  }
}

TEST(RunToolTest, DeterministicGivenSeed) {
  const Workload w = test_workload();
  const ToolProfile t = builtin_tools().front();
  stats::Rng a(5), b(5);
  const ToolReport ra = run_tool(t, w, a);
  const ToolReport rb = run_tool(t, w, b);
  ASSERT_EQ(ra.findings.size(), rb.findings.size());
  for (std::size_t i = 0; i < ra.findings.size(); ++i) {
    EXPECT_EQ(ra.findings[i].service_index, rb.findings[i].service_index);
    EXPECT_EQ(ra.findings[i].site_index, rb.findings[i].site_index);
    EXPECT_DOUBLE_EQ(ra.findings[i].confidence, rb.findings[i].confidence);
  }
}

TEST(RunToolTest, PerfectToolFindsEverythingCleanly) {
  const Workload w = test_workload();
  ToolProfile t = make_archetype_profile(ToolArchetype::kManualReview, 1.0,
                                         "oracle");
  t.sensitivity.fill(1.0);
  t.fallout = 0.0;
  stats::Rng rng(6);
  const ToolReport report = run_tool(t, w, rng);
  EXPECT_EQ(report.findings.size(), w.total_vulns());
  for (const Finding& f : report.findings) {
    const VulnInstance* v = w.vuln_at(f.service_index, f.site_index);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->vuln_class, f.claimed_class);
  }
}

TEST(RunToolTest, BlindToolFindsNothing) {
  const Workload w = test_workload();
  ToolProfile t = make_archetype_profile(ToolArchetype::kFuzzer, 0.5, "blind");
  t.sensitivity.fill(0.0);
  t.fallout = 0.0;
  stats::Rng rng(7);
  EXPECT_TRUE(run_tool(t, w, rng).findings.empty());
}

TEST(RunToolTest, FalseAlarmsLandOnCleanDistinctSites) {
  const Workload w = test_workload(8, 0.2);
  ToolProfile t = make_archetype_profile(ToolArchetype::kStaticAnalyzer, 0.5,
                                         "noisy");
  t.sensitivity.fill(0.0);  // only false alarms
  t.fallout = 0.3;
  stats::Rng rng(9);
  const ToolReport report = run_tool(t, w, rng);
  EXPECT_FALSE(report.findings.empty());
  std::set<std::pair<std::size_t, std::size_t>> sites;
  for (const Finding& f : report.findings) {
    EXPECT_TRUE(sites.insert({f.service_index, f.site_index}).second)
        << "false alarms must hit distinct sites";
    const Service& svc = w.services()[f.service_index];
    EXPECT_LT(f.site_index, svc.candidate_sites);
    EXPECT_EQ(w.vuln_at(f.service_index, f.site_index), nullptr)
        << "false alarm must land on a clean site";
  }
}

TEST(RunToolTest, ConfidencesInUnitInterval) {
  const Workload w = test_workload();
  const ToolProfile t = builtin_tools()[2];
  stats::Rng rng(10);
  for (const Finding& f : run_tool(t, w, rng).findings) {
    EXPECT_GE(f.confidence, 0.0);
    EXPECT_LE(f.confidence, 1.0);
  }
}

TEST(RunToolTest, TimingModel) {
  const Workload w = test_workload();
  ToolProfile t = builtin_tools().front();
  t.startup_seconds = 10.0;
  t.speed_kloc_per_second = 2.0;
  stats::Rng rng(11);
  const ToolReport report = run_tool(t, w, rng);
  EXPECT_DOUBLE_EQ(report.analysis_seconds, 10.0 + w.total_kloc() / 2.0);
}

TEST(SampleToolTest, WithinQualityRangeAndValid) {
  stats::Rng rng(12);
  for (int i = 0; i < 50; ++i) {
    const ToolProfile t = sample_tool(0.3, 0.8, rng);
    EXPECT_NO_THROW(t.validate());
  }
  EXPECT_THROW(sample_tool(0.8, 0.3, rng), std::invalid_argument);
}

TEST(ArchetypeNameTest, AllNamed) {
  for (const ToolArchetype a :
       {ToolArchetype::kStaticAnalyzer, ToolArchetype::kPenetrationTester,
        ToolArchetype::kFuzzer, ToolArchetype::kManualReview})
    EXPECT_FALSE(archetype_name(a).empty());
}

}  // namespace
}  // namespace vdbench::vdsim
