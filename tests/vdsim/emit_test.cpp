#include "vdsim/emit.h"

#include <gtest/gtest.h>

#include <string>

#include "sast/parser.h"

namespace vdbench::vdsim {
namespace {

// A one-service workload with hand-picked instances, so every emitted
// shape (and its difficulty threshold) is pinned down exactly.
Workload handmade_workload() {
  Service svc;
  svc.name = "service-0";
  svc.kloc = 1.0;
  svc.candidate_sites = 40;
  const auto add = [&](std::size_t site, VulnClass c, double difficulty) {
    VulnInstance v;
    v.id = site;
    v.service_index = 0;
    v.site_index = site;
    v.vuln_class = c;
    v.difficulty = difficulty;
    svc.vulns.push_back(v);
  };
  add(0, VulnClass::kSqlInjection, 0.10);   // direct flow
  add(1, VulnClass::kSqlInjection, 0.45);   // one helper
  add(2, VulnClass::kSqlInjection, 0.70);   // two helpers (still caught)
  add(3, VulnClass::kSqlInjection, 0.90);   // three helpers (blind spot)
  add(4, VulnClass::kXss, 0.20);            // concat markup
  add(5, VulnClass::kXss, 0.80);            // format markup (blind spot)
  add(6, VulnClass::kPathTraversal, 0.30);
  add(7, VulnClass::kPathTraversal, 0.75);  // to_lower wash (blind spot)
  add(8, VulnClass::kBufferOverflow, 0.30);
  add(9, VulnClass::kBufferOverflow, 0.80); // sink in helper (blind spot)
  add(10, VulnClass::kWeakCrypto, 0.20);
  add(11, VulnClass::kWeakCrypto, 0.80);    // concat'd literal (blind spot)
  add(12, VulnClass::kCommandInjection, 0.50);
  add(13, VulnClass::kIntegerOverflow, 0.50);
  add(14, VulnClass::kUseAfterFree, 0.50);

  WorkloadSpec spec;
  spec.num_services = 1;
  return Workload(spec, {svc});
}

TEST(EmitTest, SqliIndirectionDepthFollowsThresholds) {
  EXPECT_EQ(sqli_indirection_depth(0.0), 0u);
  EXPECT_EQ(sqli_indirection_depth(0.29), 0u);
  EXPECT_EQ(sqli_indirection_depth(0.30), 1u);
  EXPECT_EQ(sqli_indirection_depth(0.59), 1u);
  EXPECT_EQ(sqli_indirection_depth(0.60), 2u);
  EXPECT_EQ(sqli_indirection_depth(0.84), 2u);
  EXPECT_EQ(sqli_indirection_depth(0.85), 3u);
  EXPECT_EQ(sqli_indirection_depth(1.0), 3u);
}

TEST(EmitTest, CleanVariantIsDeterministicPureHash) {
  for (std::size_t s = 0; s < 5; ++s)
    for (std::size_t site = 0; site < 50; ++site)
      EXPECT_EQ(clean_variant(s, site), clean_variant(s, site));

  // All three shapes occur in a modest window (1/16 and 2/16 buckets).
  std::size_t typed = 0;
  std::size_t sanitized = 0;
  std::size_t benign = 0;
  for (std::size_t site = 0; site < 320; ++site) {
    switch (clean_variant(0, site)) {
      case CleanVariant::kTypedTaint: ++typed; break;
      case CleanVariant::kSanitizedFlow: ++sanitized; break;
      case CleanVariant::kBenign: ++benign; break;
    }
  }
  EXPECT_GT(typed, 0u);
  EXPECT_GT(sanitized, typed);  // two buckets vs one
  EXPECT_GT(benign, sanitized);
}

TEST(EmitTest, EmissionIsAPureFunctionOfTheWorkload) {
  const Workload workload = handmade_workload();
  const CodeEmitter emitter(workload);
  EXPECT_EQ(emitter.emit_service(0).text, emitter.emit_service(0).text);
  EXPECT_EQ(emitter.emit_all().size(), 1u);
  EXPECT_EQ(emitter.emit_service(0).name, "service-0.mini");
  EXPECT_THROW((void)emitter.emit_service(1), std::out_of_range);
}

TEST(EmitTest, EmittedShapesTrackDifficultyThresholds) {
  const std::string text =
      CodeEmitter(handmade_workload()).emit_service(0).text;

  // SQLi nesting: site 2 (d=0.70) gets a two-helper chain, site 3
  // (d=0.90) a three-helper chain.
  EXPECT_NE(text.find("fn w2_2(x)"), std::string::npos);
  EXPECT_EQ(text.find("fn w2_3(x)"), std::string::npos);
  EXPECT_NE(text.find("fn w3_3(x)"), std::string::npos);

  // XSS: concat below the threshold, format at/above it.
  EXPECT_NE(text.find("concat(\"<h1>Hello \", name)"), std::string::npos);
  EXPECT_NE(text.find("format(\"<h1>Hello {}</h1>\", name)"),
            std::string::npos);

  // Path traversal: the hard variant washes through to_lower.
  EXPECT_NE(text.find("to_lower(f)"), std::string::npos);

  // Buffer overflow: the hard variant hides the copy in a helper.
  EXPECT_NE(text.find("fn copy9(x)"), std::string::npos);
  EXPECT_EQ(text.find("fn copy8(x)"), std::string::npos);

  // Credentials: literal below the threshold, concat'd literal above.
  EXPECT_NE(text.find("auth_check(\"admin\", \"hunter2\")"),
            std::string::npos);
  EXPECT_NE(text.find("concat(\"hun\", \"ter2\")"), std::string::npos);
}

TEST(EmitTest, EmittedSourceParsesAndRoundTrips) {
  const Workload workload = handmade_workload();
  const std::string text = CodeEmitter(workload).emit_service(0).text;
  const sast::Program program = sast::parse(text);

  // One entry function per candidate site, plus the helper chains.
  std::size_t entries = 0;
  for (const sast::Function& fn : program.functions)
    if (fn.name.rfind("site_", 0) == 0) ++entries;
  EXPECT_EQ(entries, workload.services()[0].candidate_sites);

  // The canonical rendering of the parse is itself a fixed point.
  const std::string canonical = sast::to_source(program);
  EXPECT_EQ(sast::to_source(sast::parse(canonical)), canonical);
}

TEST(EmitTest, GeneratedWorkloadEmitsParseableServices) {
  WorkloadSpec spec;
  spec.num_services = 8;
  stats::Rng rng(7);
  const Workload workload = generate_workload(spec, rng);
  const CodeEmitter emitter(workload);
  for (std::size_t s = 0; s < workload.services().size(); ++s)
    EXPECT_NO_THROW((void)sast::parse(emitter.emit_service(s).text))
        << "service " << s;
}

}  // namespace
}  // namespace vdbench::vdsim
