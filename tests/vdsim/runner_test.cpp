#include "vdsim/runner.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vdbench::vdsim {
namespace {

Workload test_workload(std::uint64_t seed = 1) {
  WorkloadSpec spec;
  spec.num_services = 80;
  spec.prevalence = 0.12;
  stats::Rng rng(seed);
  return generate_workload(spec, rng);
}

TEST(EvaluateReportTest, ConfusionCountsAddUp) {
  const Workload w = test_workload();
  const ToolProfile t = builtin_tools().front();
  stats::Rng rng(2);
  const BenchmarkResult r = run_benchmark(t, w, CostModel{5.0, 1.0}, rng);
  const core::ConfusionMatrix& cm = r.context.cm;
  EXPECT_EQ(cm.tp + cm.fn, w.total_vulns());
  EXPECT_EQ(cm.total(), w.total_sites());
  EXPECT_EQ(r.matched_vulns, cm.tp);
}

TEST(EvaluateReportTest, PerfectToolPerfectConfusion) {
  const Workload w = test_workload(3);
  ToolProfile t =
      make_archetype_profile(ToolArchetype::kManualReview, 1.0, "oracle");
  t.sensitivity.fill(1.0);
  t.fallout = 0.0;
  stats::Rng rng(4);
  const BenchmarkResult r = run_benchmark(t, w, CostModel{}, rng);
  EXPECT_EQ(r.context.cm.tp, w.total_vulns());
  EXPECT_EQ(r.context.cm.fn, 0u);
  EXPECT_EQ(r.context.cm.fp, 0u);
  EXPECT_EQ(r.context.cm.tn, w.total_sites() - w.total_vulns());
  EXPECT_DOUBLE_EQ(r.metric(core::MetricId::kRecall), 1.0);
  EXPECT_DOUBLE_EQ(r.metric(core::MetricId::kPrecision), 1.0);
}

TEST(EvaluateReportTest, DuplicateFindingsCountedOnce) {
  const Workload w = test_workload(5);
  // Craft a report that reports the first vulnerability twice.
  const Service& svc = w.services().front();
  ASSERT_FALSE(svc.vulns.empty());
  const VulnInstance& v = svc.vulns.front();
  ToolReport report;
  report.tool_name = "dup";
  Finding f;
  f.service_index = 0;
  f.site_index = v.site_index;
  f.claimed_class = v.vuln_class;
  f.confidence = 0.9;
  report.findings.push_back(f);
  report.findings.push_back(f);
  const BenchmarkResult r = evaluate_report(report, w, CostModel{});
  EXPECT_EQ(r.context.cm.tp, 1u);
  EXPECT_EQ(r.duplicate_findings, 1u);
  EXPECT_EQ(r.context.cm.fp, 0u);
}

TEST(EvaluateReportTest, WrongClassIsFalsePositive) {
  const Workload w = test_workload(6);
  const Service& svc = w.services().front();
  ASSERT_FALSE(svc.vulns.empty());
  const VulnInstance& v = svc.vulns.front();
  ToolReport report;
  report.tool_name = "confused";
  Finding f;
  f.service_index = 0;
  f.site_index = v.site_index;
  f.claimed_class = v.vuln_class == VulnClass::kXss ? VulnClass::kSqlInjection
                                                    : VulnClass::kXss;
  f.confidence = 0.5;
  report.findings.push_back(f);
  const BenchmarkResult r = evaluate_report(report, w, CostModel{});
  EXPECT_EQ(r.context.cm.tp, 0u);
  EXPECT_EQ(r.context.cm.fp, 1u);
  EXPECT_EQ(r.misclassified_findings, 1u);
}

TEST(EvaluateReportTest, CostModelPropagated) {
  const Workload w = test_workload(7);
  const ToolProfile t = builtin_tools()[1];
  stats::Rng rng(8);
  const BenchmarkResult r = run_benchmark(t, w, CostModel{50.0, 2.0}, rng);
  EXPECT_DOUBLE_EQ(r.context.cost_fn, 50.0);
  EXPECT_DOUBLE_EQ(r.context.cost_fp, 2.0);
  EXPECT_DOUBLE_EQ(r.context.kloc, w.total_kloc());
  EXPECT_GT(r.context.analysis_seconds, 0.0);
}

TEST(EvaluateReportTest, AucSeparatesGoodConfidenceModels) {
  const Workload w = test_workload(9);
  ToolProfile sharp =
      make_archetype_profile(ToolArchetype::kStaticAnalyzer, 0.6, "sharp");
  sharp.confidence_tp_mean = 0.95;
  sharp.confidence_fp_mean = 0.05;
  sharp.confidence_sd = 0.02;
  ToolProfile blurry = sharp;
  blurry.name = "blurry";
  blurry.confidence_tp_mean = 0.55;
  blurry.confidence_fp_mean = 0.45;
  blurry.confidence_sd = 0.2;
  stats::Rng r1(10), r2(10);
  const double auc_sharp =
      run_benchmark(sharp, w, CostModel{}, r1).context.auc;
  const double auc_blurry =
      run_benchmark(blurry, w, CostModel{}, r2).context.auc;
  EXPECT_GT(auc_sharp, 0.99);
  EXPECT_LT(auc_blurry, auc_sharp);
  EXPECT_GT(auc_blurry, 0.5);
}

TEST(EvaluateReportTest, AucUndefinedWithoutBothKinds) {
  const Workload w = test_workload(11);
  ToolProfile silent =
      make_archetype_profile(ToolArchetype::kFuzzer, 0.5, "silent");
  silent.sensitivity.fill(0.0);
  silent.fallout = 0.0;
  stats::Rng rng(12);
  const BenchmarkResult r = run_benchmark(silent, w, CostModel{}, rng);
  EXPECT_TRUE(std::isnan(r.context.auc));
}

TEST(RunBenchmarksTest, OneResultPerToolDeterministic) {
  const Workload w = test_workload(13);
  const std::vector<ToolProfile> tools = builtin_tools();
  stats::Rng a(14), b(14);
  const auto ra = run_benchmarks(tools, w, CostModel{}, a);
  const auto rb = run_benchmarks(tools, w, CostModel{}, b);
  ASSERT_EQ(ra.size(), tools.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].tool_name, tools[i].name);
    EXPECT_EQ(ra[i].context.cm, rb[i].context.cm);
  }
}

TEST(RunBenchmarksTest, BetterToolScoresBetterOnBigWorkload) {
  WorkloadSpec spec;
  spec.num_services = 300;
  spec.prevalence = 0.12;
  stats::Rng wrng(15);
  const Workload w = generate_workload(spec, wrng);
  const std::vector<ToolProfile> tools = {
      make_archetype_profile(ToolArchetype::kStaticAnalyzer, 0.9, "good"),
      make_archetype_profile(ToolArchetype::kStaticAnalyzer, 0.3, "bad"),
  };
  stats::Rng rng(16);
  const auto results = run_benchmarks(tools, w, CostModel{}, rng);
  EXPECT_GT(results[0].metric(core::MetricId::kMcc),
            results[1].metric(core::MetricId::kMcc));
  EXPECT_GT(results[0].metric(core::MetricId::kFMeasure),
            results[1].metric(core::MetricId::kFMeasure));
}

}  // namespace
}  // namespace vdbench::vdsim
