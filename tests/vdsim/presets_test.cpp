#include "vdsim/presets.h"

#include <gtest/gtest.h>

#include <set>

namespace vdbench::vdsim {
namespace {

TEST(PresetsTest, AllPresetsProduceValidSpecs) {
  EXPECT_EQ(all_workload_presets().size(), kWorkloadPresetCount);
  for (const WorkloadPreset p : all_workload_presets()) {
    const WorkloadSpec spec = preset_spec(p, 50);
    EXPECT_NO_THROW(spec.validate());
    EXPECT_EQ(spec.num_services, 50u);
    EXPECT_FALSE(preset_key(p).empty());
    EXPECT_FALSE(preset_description(p).empty());
  }
}

TEST(PresetsTest, KeysAreUniqueAndRoundTrip) {
  std::set<std::string_view> keys;
  for (const WorkloadPreset p : all_workload_presets()) {
    EXPECT_TRUE(keys.insert(preset_key(p)).second);
    EXPECT_EQ(preset_from_key(preset_key(p)), p);
  }
  EXPECT_THROW(preset_from_key("no_such_corpus"), std::invalid_argument);
}

TEST(PresetsTest, RejectsZeroServices) {
  EXPECT_THROW(preset_spec(WorkloadPreset::kWebServices, 0),
               std::invalid_argument);
}

TEST(PresetsTest, ClassMixesMatchTheArchetype) {
  const WorkloadSpec web = preset_spec(WorkloadPreset::kWebServices);
  const WorkloadSpec legacy = preset_spec(WorkloadPreset::kLegacyMonolith);
  const auto share = [](const WorkloadSpec& s, VulnClass c) {
    double total = 0.0;
    for (const double m : s.class_mix) total += m;
    return s.class_mix[vuln_class_index(c)] / total;
  };
  EXPECT_GT(share(web, VulnClass::kSqlInjection),
            share(legacy, VulnClass::kSqlInjection));
  EXPECT_GT(share(legacy, VulnClass::kBufferOverflow),
            share(web, VulnClass::kBufferOverflow));
}

TEST(PresetsTest, HardenedProductIsRare) {
  EXPECT_LT(preset_spec(WorkloadPreset::kHardenedProduct).prevalence, 0.01);
  EXPECT_GT(preset_spec(WorkloadPreset::kLegacyMonolith).prevalence, 0.1);
}

TEST(PresetsTest, GeneratedCorporaDifferStructurally) {
  stats::Rng r1(1), r2(1);
  const Workload micro =
      generate_workload(preset_spec(WorkloadPreset::kMicroservices, 80), r1);
  const Workload firmware = generate_workload(
      preset_spec(WorkloadPreset::kEmbeddedFirmware, 80), r2);
  // Firmware images are far larger than microservices.
  EXPECT_GT(firmware.total_kloc() / 80.0, micro.total_kloc() / 80.0 * 10.0);
  // Firmware seeds mostly memory/integer errors.
  const std::uint64_t fw_memory =
      firmware.vulns_of_class(VulnClass::kBufferOverflow) +
      firmware.vulns_of_class(VulnClass::kIntegerOverflow) +
      firmware.vulns_of_class(VulnClass::kUseAfterFree);
  EXPECT_GT(fw_memory * 2, firmware.total_vulns());
}

}  // namespace
}  // namespace vdbench::vdsim
