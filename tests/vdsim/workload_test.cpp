#include "vdsim/workload.h"

#include <gtest/gtest.h>

#include <set>

namespace vdbench::vdsim {
namespace {

WorkloadSpec small_spec() {
  WorkloadSpec spec;
  spec.num_services = 40;
  spec.prevalence = 0.15;
  return spec;
}

TEST(VulnTaxonomyTest, ClassesAndNames) {
  EXPECT_EQ(all_vuln_classes().size(), kVulnClassCount);
  std::set<std::string_view> names, cwes;
  for (const VulnClass c : all_vuln_classes()) {
    EXPECT_TRUE(names.insert(vuln_class_name(c)).second);
    EXPECT_TRUE(cwes.insert(vuln_class_cwe(c)).second);
    EXPECT_TRUE(vuln_class_cwe(c).starts_with("CWE-"));
  }
}

TEST(VulnTaxonomyTest, SeverityWeightsIncrease) {
  EXPECT_LT(severity_weight(Severity::kLow), severity_weight(Severity::kMedium));
  EXPECT_LT(severity_weight(Severity::kMedium),
            severity_weight(Severity::kHigh));
  EXPECT_LT(severity_weight(Severity::kHigh),
            severity_weight(Severity::kCritical));
  EXPECT_FALSE(severity_name(Severity::kCritical).empty());
}

TEST(WorkloadSpecTest, ValidationCatchesBadFields) {
  WorkloadSpec spec;
  EXPECT_NO_THROW(spec.validate());
  spec.num_services = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = WorkloadSpec{};
  spec.prevalence = 1.5;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = WorkloadSpec{};
  spec.class_mix.fill(0.0);
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = WorkloadSpec{};
  spec.sites_per_kloc = 0.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(WorkloadTest, DeterministicGivenSeed) {
  stats::Rng a(1), b(1);
  const Workload wa = generate_workload(small_spec(), a);
  const Workload wb = generate_workload(small_spec(), b);
  EXPECT_EQ(wa.total_sites(), wb.total_sites());
  EXPECT_EQ(wa.total_vulns(), wb.total_vulns());
  ASSERT_EQ(wa.services().size(), wb.services().size());
  for (std::size_t s = 0; s < wa.services().size(); ++s) {
    EXPECT_EQ(wa.services()[s].candidate_sites,
              wb.services()[s].candidate_sites);
    EXPECT_EQ(wa.services()[s].vulns.size(), wb.services()[s].vulns.size());
  }
}

TEST(WorkloadTest, DifferentSeedsDiffer) {
  stats::Rng a(1), b(2);
  const Workload wa = generate_workload(small_spec(), a);
  const Workload wb = generate_workload(small_spec(), b);
  EXPECT_NE(wa.total_sites(), wb.total_sites());
}

TEST(WorkloadTest, StructureIsConsistent) {
  stats::Rng rng(3);
  const Workload w = generate_workload(small_spec(), rng);
  EXPECT_EQ(w.services().size(), 40u);
  std::uint64_t sites = 0, vulns = 0;
  for (const Service& svc : w.services()) {
    EXPECT_GT(svc.candidate_sites, 0u);
    EXPECT_GT(svc.kloc, 0.0);
    EXPECT_LE(svc.vulns.size(), svc.candidate_sites);
    sites += svc.candidate_sites;
    vulns += svc.vulns.size();
    std::set<std::size_t> used_sites;
    for (const VulnInstance& v : svc.vulns) {
      EXPECT_LT(v.site_index, svc.candidate_sites);
      EXPECT_TRUE(used_sites.insert(v.site_index).second)
          << "two vulns share a site";
    }
  }
  EXPECT_EQ(w.total_sites(), sites);
  EXPECT_EQ(w.total_vulns(), vulns);
}

TEST(WorkloadTest, VulnIdsUnique) {
  stats::Rng rng(4);
  const Workload w = generate_workload(small_spec(), rng);
  std::set<std::uint64_t> ids;
  for (const Service& svc : w.services())
    for (const VulnInstance& v : svc.vulns)
      EXPECT_TRUE(ids.insert(v.id).second);
}

TEST(WorkloadTest, RealizedPrevalenceNearSpec) {
  WorkloadSpec spec = small_spec();
  spec.num_services = 400;
  spec.prevalence = 0.10;
  stats::Rng rng(5);
  const Workload w = generate_workload(spec, rng);
  EXPECT_NEAR(w.realized_prevalence(), 0.10, 0.01);
}

TEST(WorkloadTest, ClassMixRespected) {
  WorkloadSpec spec = small_spec();
  spec.num_services = 600;
  spec.prevalence = 0.2;
  spec.class_mix.fill(0.0);
  spec.class_mix[vuln_class_index(VulnClass::kSqlInjection)] = 3.0;
  spec.class_mix[vuln_class_index(VulnClass::kXss)] = 1.0;
  stats::Rng rng(6);
  const Workload w = generate_workload(spec, rng);
  const double sqli =
      static_cast<double>(w.vulns_of_class(VulnClass::kSqlInjection));
  const double xss = static_cast<double>(w.vulns_of_class(VulnClass::kXss));
  EXPECT_EQ(w.vulns_of_class(VulnClass::kBufferOverflow), 0u);
  EXPECT_NEAR(sqli / (sqli + xss), 0.75, 0.03);
}

TEST(WorkloadTest, GroundTruthLookup) {
  stats::Rng rng(7);
  const Workload w = generate_workload(small_spec(), rng);
  std::uint64_t found = 0;
  for (std::size_t s = 0; s < w.services().size(); ++s) {
    const Service& svc = w.services()[s];
    for (const VulnInstance& v : svc.vulns) {
      const VulnInstance* got = w.vuln_at(s, v.site_index);
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(got->id, v.id);
      ++found;
    }
    // A site beyond the service range is clean (nullptr), not an error.
    EXPECT_EQ(w.vuln_at(s, svc.candidate_sites + 10), nullptr);
  }
  EXPECT_EQ(found, w.total_vulns());
  EXPECT_THROW(w.vuln_at(w.services().size(), 0), std::out_of_range);
}

TEST(WorkloadTest, ZeroPrevalenceGivesCleanCorpus) {
  WorkloadSpec spec = small_spec();
  spec.prevalence = 0.0;
  stats::Rng rng(8);
  const Workload w = generate_workload(spec, rng);
  EXPECT_EQ(w.total_vulns(), 0u);
  EXPECT_DOUBLE_EQ(w.realized_prevalence(), 0.0);
}

TEST(WorkloadTest, ConstructorRejectsCorruptGroundTruth) {
  WorkloadSpec spec = small_spec();
  Service svc;
  svc.name = "svc";
  svc.kloc = 1.0;
  svc.candidate_sites = 10;
  VulnInstance v;
  v.id = 1;
  v.service_index = 0;
  v.site_index = 15;  // out of range
  v.vuln_class = VulnClass::kXss;
  svc.vulns.push_back(v);
  EXPECT_THROW(Workload(spec, {svc}), std::invalid_argument);

  svc.vulns[0].site_index = 3;
  VulnInstance dup = svc.vulns[0];
  dup.id = 2;
  svc.vulns.push_back(dup);  // same site twice
  EXPECT_THROW(Workload(spec, {svc}), std::invalid_argument);
}

}  // namespace
}  // namespace vdbench::vdsim
