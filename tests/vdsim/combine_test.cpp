#include "vdsim/combine.h"

#include <gtest/gtest.h>

#include <cmath>

#include "vdsim/presets.h"

namespace vdbench::vdsim {
namespace {

Workload test_workload(double gamma = 0.0,
                       DifficultyShape shape = DifficultyShape::kTriangular,
                       std::uint64_t seed = 1) {
  WorkloadSpec spec;
  spec.num_services = 250;
  spec.prevalence = 0.15;
  spec.difficulty_gamma = gamma;
  spec.difficulty_shape = shape;
  stats::Rng rng(seed);
  return generate_workload(spec, rng);
}

TEST(CombineReportsTest, DeduplicatesBysiteAndClassKeepingBestConfidence) {
  ToolReport a;
  a.tool_name = "a";
  a.analysis_seconds = 10.0;
  a.findings = {{0, 1, VulnClass::kXss, 0.5}, {0, 2, VulnClass::kXss, 0.9}};
  ToolReport b;
  b.tool_name = "b";
  b.analysis_seconds = 5.0;
  b.findings = {{0, 1, VulnClass::kXss, 0.8},            // dup, higher conf
                {0, 1, VulnClass::kSqlInjection, 0.4},   // same site, new class
                {1, 0, VulnClass::kWeakCrypto, 0.3}};
  const std::vector<ToolReport> both = {a, b};
  const ToolReport combined = combine_reports(both, "a+b");
  EXPECT_EQ(combined.tool_name, "a+b");
  EXPECT_DOUBLE_EQ(combined.analysis_seconds, 15.0);
  EXPECT_EQ(combined.findings.size(), 4u);
  for (const Finding& f : combined.findings) {
    if (f.service_index == 0 && f.site_index == 1 &&
        f.claimed_class == VulnClass::kXss)
      EXPECT_DOUBLE_EQ(f.confidence, 0.8);
  }
}

TEST(CombineReportsTest, RejectsEmptyInput) {
  const std::vector<ToolReport> none;
  EXPECT_THROW(combine_reports(none, "x"), std::invalid_argument);
}

TEST(CombineReportsTest, SingleReportPassesThrough) {
  ToolReport a;
  a.tool_name = "a";
  a.findings = {{0, 1, VulnClass::kXss, 0.5}};
  const std::vector<ToolReport> one = {a};
  EXPECT_EQ(combine_reports(one, "solo").findings.size(), 1u);
}

TEST(ComplementarityTest, UnionAtLeastAsGoodAsEitherTool) {
  const Workload w = test_workload();
  stats::Rng rng(2);
  const Complementarity c = analyze_complementarity(
      builtin_tools()[0], builtin_tools()[2], w, CostModel{}, rng);
  EXPECT_GE(c.union_recall, c.recall_a - 1e-12);
  EXPECT_GE(c.union_recall, c.recall_b - 1e-12);
  EXPECT_GE(c.marginal_gain(), 0.0);
  EXPECT_LE(c.union_recall, c.independent_prediction + 0.05);
}

TEST(ComplementarityTest, IndependentMissesMatchPrediction) {
  const Workload w = test_workload(0.0);
  stats::Rng rng(3);
  double total_deficit = 0.0;
  int pairs = 0;
  const auto tools = builtin_tools();
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = i + 1; j < 3; ++j) {
      stats::Rng pair_rng = rng.split(i * 10 + j);
      const Complementarity c = analyze_complementarity(
          tools[i], tools[j], w, CostModel{}, pair_rng);
      total_deficit += c.correlation_deficit();
      ++pairs;
    }
  }
  EXPECT_NEAR(total_deficit / pairs, 0.0, 0.02);
}

TEST(ComplementarityTest, SharedDifficultyCreatesDeficit) {
  const Workload independent = test_workload(0.0);
  const Workload correlated =
      test_workload(2.0, DifficultyShape::kBimodal, 1);
  const auto mean_deficit = [&](const Workload& w) {
    stats::Rng rng(4);
    double acc = 0.0;
    int pairs = 0;
    const auto tools = builtin_tools();
    for (std::size_t i = 0; i < tools.size(); ++i) {
      for (std::size_t j = i + 1; j < tools.size(); ++j) {
        stats::Rng pair_rng = rng.split(i * 10 + j);
        acc += analyze_complementarity(tools[i], tools[j], w, CostModel{},
                                       pair_rng)
                   .correlation_deficit();
        ++pairs;
      }
    }
    return acc / pairs;
  };
  EXPECT_GT(mean_deficit(correlated), mean_deficit(independent) + 0.02);
}

TEST(DifficultyModelTest, DifficultyWithinRangeAndShaped) {
  const Workload tri = test_workload(0.0, DifficultyShape::kTriangular, 5);
  const Workload bi = test_workload(0.0, DifficultyShape::kBimodal, 5);
  std::size_t bi_extreme = 0, bi_total = 0;
  for (const Service& svc : bi.services()) {
    for (const VulnInstance& v : svc.vulns) {
      EXPECT_GE(v.difficulty, 0.0);
      EXPECT_LE(v.difficulty, 1.0);
      ++bi_total;
      if (v.difficulty <= 0.15 || v.difficulty >= 0.85) ++bi_extreme;
    }
  }
  EXPECT_EQ(bi_extreme, bi_total) << "bimodal must avoid the middle";
  std::size_t tri_middle = 0, tri_total = 0;
  for (const Service& svc : tri.services()) {
    for (const VulnInstance& v : svc.vulns) {
      ++tri_total;
      if (v.difficulty > 0.15 && v.difficulty < 0.85) ++tri_middle;
    }
  }
  EXPECT_GT(static_cast<double>(tri_middle) / static_cast<double>(tri_total),
            0.5);
}

TEST(DifficultyModelTest, GammaReducesRecall) {
  const Workload easy = test_workload(0.0, DifficultyShape::kTriangular, 6);
  const Workload hard = test_workload(3.0, DifficultyShape::kTriangular, 6);
  const ToolProfile tool = builtin_tools().front();
  stats::Rng r1(7), r2(7);
  const double recall_easy =
      run_benchmark(tool, easy, CostModel{}, r1).context.cm.tpr();
  const double recall_hard =
      run_benchmark(tool, hard, CostModel{}, r2).context.cm.tpr();
  EXPECT_LT(recall_hard, recall_easy * 0.7);
}

TEST(DifficultyModelTest, NegativeGammaRejected) {
  WorkloadSpec spec;
  spec.difficulty_gamma = -1.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace vdbench::vdsim
