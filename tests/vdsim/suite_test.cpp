#include "vdsim/suite.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace vdbench::vdsim {
namespace {

SuiteConfig small_config() {
  SuiteConfig cfg;
  cfg.workload.num_services = 60;
  cfg.workload.prevalence = 0.12;
  cfg.runs = 12;
  cfg.bootstrap_replicates = 300;
  return cfg;
}

std::vector<ToolProfile> two_tools(double q_good = 0.85, double q_bad = 0.35) {
  return {make_archetype_profile(ToolArchetype::kStaticAnalyzer, q_good,
                                 "good"),
          make_archetype_profile(ToolArchetype::kStaticAnalyzer, q_bad,
                                 "bad")};
}

const std::vector<core::MetricId> kMetrics = {core::MetricId::kFMeasure,
                                              core::MetricId::kMcc};

TEST(SuiteConfigTest, Validation) {
  SuiteConfig cfg = small_config();
  EXPECT_NO_THROW(cfg.validate());
  cfg.runs = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = small_config();
  cfg.confidence = 1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = small_config();
  cfg.bootstrap_replicates = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(SuiteTest, ShapeAndDeterminism) {
  stats::Rng a(1), b(1);
  const SuiteResult ra = run_suite(two_tools(), kMetrics, small_config(), a);
  const SuiteResult rb = run_suite(two_tools(), kMetrics, small_config(), b);
  ASSERT_EQ(ra.tools.size(), 2u);
  ASSERT_EQ(ra.tools[0].metrics.size(), kMetrics.size());
  EXPECT_EQ(ra.comparisons.size(), kMetrics.size());  // one pair x metrics
  EXPECT_DOUBLE_EQ(ra.tools[0].metric(core::MetricId::kMcc).ci.estimate,
                   rb.tools[0].metric(core::MetricId::kMcc).ci.estimate);
}

TEST(SuiteTest, PerRunValuesCountMatchesRuns) {
  stats::Rng rng(2);
  const SuiteResult r = run_suite(two_tools(), kMetrics, small_config(), rng);
  for (const ToolEstimates& tool : r.tools) {
    for (const MetricEstimate& est : tool.metrics) {
      EXPECT_EQ(est.values.size() + est.undefined_runs,
                small_config().runs);
    }
  }
}

TEST(SuiteTest, CiBracketsEstimate) {
  stats::Rng rng(3);
  const SuiteResult r = run_suite(two_tools(), kMetrics, small_config(), rng);
  for (const ToolEstimates& tool : r.tools) {
    for (const MetricEstimate& est : tool.metrics) {
      ASSERT_FALSE(est.values.empty());
      EXPECT_LE(est.ci.lower, est.ci.estimate);
      EXPECT_GE(est.ci.upper, est.ci.estimate);
    }
  }
}

TEST(SuiteTest, ClearQualityGapIsSignificant) {
  stats::Rng rng(4);
  const SuiteResult r =
      run_suite(two_tools(0.9, 0.3), kMetrics, small_config(), rng);
  for (const PairwiseComparison& cmp : r.comparisons) {
    EXPECT_TRUE(cmp.significant())
        << core::metric_info(cmp.metric).key << " p=" << cmp.welch.p_value;
    EXPECT_GT(cmp.mean_a, cmp.mean_b);  // "good" listed first
    EXPECT_GT(cmp.probability_superiority, 0.9);
  }
}

TEST(SuiteTest, NearIdenticalToolsAreNotSignificant) {
  // Any single seed can produce a spurious rejection at alpha = 0.05, so
  // pool a few campaigns: a 0.01 quality gap must not be resolvable in the
  // majority of 12-run campaigns.
  std::size_t significant = 0, total = 0;
  for (const std::uint64_t seed : {5u, 6u, 7u}) {
    stats::Rng rng(seed);
    const SuiteResult r =
        run_suite(two_tools(0.60, 0.59), kMetrics, small_config(), rng);
    for (const PairwiseComparison& cmp : r.comparisons) {
      if (cmp.significant()) ++significant;
      ++total;
    }
  }
  EXPECT_LT(significant * 2, total)
      << "a 0.01 quality gap should not be resolvable in 12 small runs";
}

TEST(SuiteTest, ComparisonsCoverAllPairs) {
  const std::vector<ToolProfile> tools = {
      make_archetype_profile(ToolArchetype::kStaticAnalyzer, 0.5, "t1"),
      make_archetype_profile(ToolArchetype::kFuzzer, 0.5, "t2"),
      make_archetype_profile(ToolArchetype::kPenetrationTester, 0.5, "t3")};
  stats::Rng rng(6);
  const SuiteResult r = run_suite(tools, kMetrics, small_config(), rng);
  EXPECT_EQ(r.comparisons.size(), 3u * kMetrics.size());
}

TEST(SuiteTest, RejectsBadArguments) {
  stats::Rng rng(7);
  EXPECT_THROW(run_suite({}, kMetrics, small_config(), rng),
               std::invalid_argument);
  EXPECT_THROW(run_suite(two_tools(), {}, small_config(), rng),
               std::invalid_argument);
  const std::vector<core::MetricId> with_descriptive = {
      core::MetricId::kPrevalence};
  EXPECT_THROW(run_suite(two_tools(), with_descriptive, small_config(), rng),
               std::invalid_argument);
  EXPECT_THROW(
      run_suite(two_tools(), kMetrics, small_config(), rng).tools.at(0).metric(
          core::MetricId::kAccuracy),
      std::invalid_argument);
}

TEST(ScoredRunTest, CoversEverySiteDeterministically) {
  WorkloadSpec spec;
  spec.num_services = 30;
  spec.prevalence = 0.15;
  stats::Rng wrng(8);
  const Workload w = generate_workload(spec, wrng);
  const ToolProfile tool = builtin_tools().front();
  stats::Rng a(9), b(9);
  const auto sa = run_tool_scored(tool, w, a);
  const auto sb = run_tool_scored(tool, w, b);
  ASSERT_EQ(sa.size(), w.total_sites());
  std::size_t positives = 0;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_DOUBLE_EQ(sa[i].score, sb[i].score);
    EXPECT_EQ(sa[i].positive, sb[i].positive);
    if (sa[i].positive) ++positives;
  }
  EXPECT_EQ(positives, w.total_vulns());
}

TEST(ScoredRunTest, BetterToolHasHigherRocAuc) {
  WorkloadSpec spec;
  spec.num_services = 150;
  spec.prevalence = 0.15;
  stats::Rng wrng(10);
  const Workload w = generate_workload(spec, wrng);
  const ToolProfile good =
      make_archetype_profile(ToolArchetype::kStaticAnalyzer, 0.9, "good");
  const ToolProfile bad =
      make_archetype_profile(ToolArchetype::kStaticAnalyzer, 0.2, "bad");
  stats::Rng r1(11), r2(11);
  const core::RocCurve roc_good{run_tool_scored(good, w, r1)};
  const core::RocCurve roc_bad{run_tool_scored(bad, w, r2)};
  EXPECT_GT(roc_good.auc(), roc_bad.auc());
  EXPECT_GT(roc_good.auc(), 0.7);
}

}  // namespace
}  // namespace vdbench::vdsim
