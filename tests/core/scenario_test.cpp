#include "core/scenario.h"

#include <gtest/gtest.h>

#include <set>

namespace vdbench::core {
namespace {

TEST(ScenarioTest, FiveBuiltinsWithUniqueKeys) {
  const auto scenarios = builtin_scenarios();
  EXPECT_EQ(scenarios.size(), 5u);
  std::set<std::string> keys;
  for (const Scenario& s : scenarios) {
    EXPECT_TRUE(keys.insert(s.key).second) << "duplicate " << s.key;
    EXPECT_NO_THROW(s.validate());
  }
}

TEST(ScenarioTest, LookupByKey) {
  EXPECT_EQ(builtin_scenario("s1_critical").name,
            "Security-critical deployment");
  EXPECT_THROW(builtin_scenario("nope"), std::invalid_argument);
}

TEST(ScenarioTest, CostStructureMatchesIntent) {
  // S1 punishes misses, S2 punishes false alarms, S3 is balanced.
  const Scenario& s1 = builtin_scenario("s1_critical");
  const Scenario& s2 = builtin_scenario("s2_budget");
  const Scenario& s3 = builtin_scenario("s3_balanced");
  EXPECT_GT(s1.cost_fn / s1.cost_fp, 10.0);
  EXPECT_LT(s2.cost_fn / s2.cost_fp, 0.5);
  EXPECT_DOUBLE_EQ(s3.cost_fn, s3.cost_fp);
}

TEST(ScenarioTest, RareScenarioIsExtremelyImbalanced) {
  EXPECT_LT(builtin_scenario("s4_rare").prevalence, 0.01);
}

TEST(ScenarioTest, SampleToolWithinRanges) {
  const Scenario& s = builtin_scenario("s3_balanced");
  stats::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const DetectorProfile d = s.sample_tool(rng);
    EXPECT_GE(d.sensitivity, s.sens_lo);
    EXPECT_LE(d.sensitivity, s.sens_hi);
    EXPECT_GE(d.fallout, s.fallout_lo);
    EXPECT_LE(d.fallout, s.fallout_hi);
  }
}

TEST(ScenarioTest, TrueCostMatchesExpectedCost) {
  const Scenario& s = builtin_scenario("s5_regression");
  const DetectorProfile d{0.7, 0.08};
  EXPECT_DOUBLE_EQ(s.true_cost(d),
                   expected_cost(d, s.prevalence, s.cost_fn, s.cost_fp));
}

TEST(ScenarioTest, DominatingToolAlwaysCostsLessInEveryScenario) {
  const DetectorProfile better{0.9, 0.02};
  const DetectorProfile worse{0.6, 0.20};
  for (const Scenario& s : builtin_scenarios())
    EXPECT_LT(s.true_cost(better), s.true_cost(worse)) << s.key;
}

TEST(ScenarioTest, MissHeavyScenarioPrefersSensitiveTool) {
  // High-sensitivity/noisy vs low-sensitivity/quiet: S1 must prefer the
  // sensitive tool, S2 the quiet one — the core of the paper's argument
  // that the adequate metric depends on the scenario.
  const DetectorProfile sensitive{0.95, 0.15};
  const DetectorProfile quiet{0.60, 0.02};
  const Scenario& s1 = builtin_scenario("s1_critical");
  const Scenario& s2 = builtin_scenario("s2_budget");
  EXPECT_LT(s1.true_cost(sensitive), s1.true_cost(quiet));
  EXPECT_GT(s2.true_cost(sensitive), s2.true_cost(quiet));
}

TEST(ScenarioTest, ValidationCatchesBadFields) {
  Scenario s = builtin_scenario("s3_balanced");
  s.prevalence = 0.0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = builtin_scenario("s3_balanced");
  s.cost_fn = -1.0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = builtin_scenario("s3_balanced");
  s.sens_lo = 0.9;
  s.sens_hi = 0.5;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = builtin_scenario("s3_balanced");
  s.property_weights.fill(0.0);
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = builtin_scenario("s3_balanced");
  s.key.clear();
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(ScenarioTest, PropertyWeightsRoughlyNormalized) {
  for (const Scenario& s : builtin_scenarios()) {
    double sum = 0.0;
    for (const double w : s.property_weights) sum += w;
    EXPECT_NEAR(sum, 1.0, 1e-9) << s.key;
  }
}

}  // namespace
}  // namespace vdbench::core
