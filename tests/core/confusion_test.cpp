#include "core/confusion.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace vdbench::core {
namespace {

ConfusionMatrix canonical() {
  // 1000 items, prevalence 6%: TP=40, FN=20, FP=10, TN=930.
  return ConfusionMatrix{.tp = 40, .fp = 10, .tn = 930, .fn = 20};
}

TEST(ConfusionTest, Totals) {
  const ConfusionMatrix cm = canonical();
  EXPECT_EQ(cm.total(), 1000u);
  EXPECT_EQ(cm.actual_positives(), 60u);
  EXPECT_EQ(cm.actual_negatives(), 940u);
  EXPECT_EQ(cm.predicted_positives(), 50u);
  EXPECT_EQ(cm.predicted_negatives(), 950u);
}

TEST(ConfusionTest, Rates) {
  const ConfusionMatrix cm = canonical();
  EXPECT_DOUBLE_EQ(cm.tpr(), 40.0 / 60.0);
  EXPECT_DOUBLE_EQ(cm.fnr(), 20.0 / 60.0);
  EXPECT_DOUBLE_EQ(cm.tnr(), 930.0 / 940.0);
  EXPECT_DOUBLE_EQ(cm.fpr(), 10.0 / 940.0);
  EXPECT_DOUBLE_EQ(cm.ppv(), 40.0 / 50.0);
  EXPECT_DOUBLE_EQ(cm.npv(), 930.0 / 950.0);
  EXPECT_DOUBLE_EQ(cm.fdr(), 10.0 / 50.0);
  EXPECT_DOUBLE_EQ(cm.fomr(), 20.0 / 950.0);
  EXPECT_DOUBLE_EQ(cm.prevalence(), 0.06);
}

TEST(ConfusionTest, ComplementaryRatesSumToOne) {
  const ConfusionMatrix cm = canonical();
  EXPECT_DOUBLE_EQ(cm.tpr() + cm.fnr(), 1.0);
  EXPECT_DOUBLE_EQ(cm.tnr() + cm.fpr(), 1.0);
  EXPECT_DOUBLE_EQ(cm.ppv() + cm.fdr(), 1.0);
  EXPECT_DOUBLE_EQ(cm.npv() + cm.fomr(), 1.0);
}

TEST(ConfusionTest, DegenerateRatesAreNaN) {
  const ConfusionMatrix no_positives{.tp = 0, .fp = 5, .tn = 95, .fn = 0};
  EXPECT_TRUE(std::isnan(no_positives.tpr()));
  EXPECT_TRUE(std::isnan(no_positives.fnr()));
  const ConfusionMatrix no_negatives{.tp = 5, .fp = 0, .tn = 0, .fn = 5};
  EXPECT_TRUE(std::isnan(no_negatives.tnr()));
  EXPECT_TRUE(std::isnan(no_negatives.fpr()));
  const ConfusionMatrix no_predictions{.tp = 0, .fp = 0, .tn = 50, .fn = 50};
  EXPECT_TRUE(std::isnan(no_predictions.ppv()));
  const ConfusionMatrix all_predicted{.tp = 50, .fp = 50, .tn = 0, .fn = 0};
  EXPECT_TRUE(std::isnan(all_predicted.npv()));
}

TEST(ConfusionTest, IsDefinedHelper) {
  EXPECT_TRUE(is_defined(0.0));
  EXPECT_TRUE(is_defined(-1.5));
  EXPECT_FALSE(is_defined(std::nan("")));
  EXPECT_FALSE(is_defined(std::numeric_limits<double>::infinity()));
}

TEST(ConfusionTest, Addition) {
  const ConfusionMatrix a{.tp = 1, .fp = 2, .tn = 3, .fn = 4};
  const ConfusionMatrix b{.tp = 10, .fp = 20, .tn = 30, .fn = 40};
  const ConfusionMatrix sum = a + b;
  EXPECT_EQ(sum, (ConfusionMatrix{.tp = 11, .fp = 22, .tn = 33, .fn = 44}));
  ConfusionMatrix c = a;
  c += b;
  EXPECT_EQ(c, sum);
}

TEST(ConfusionTest, ToStringFormat) {
  const ConfusionMatrix cm{.tp = 1, .fp = 2, .tn = 3, .fn = 4};
  EXPECT_EQ(cm.to_string(), "TP=1 FP=2 TN=3 FN=4");
}

TEST(ExpectedConfusionTest, ExactOnRoundNumbers) {
  const ConfusionMatrix cm = expected_confusion(0.8, 0.1, 0.2, 1000);
  EXPECT_EQ(cm.tp, 160u);
  EXPECT_EQ(cm.fn, 40u);
  EXPECT_EQ(cm.fp, 80u);
  EXPECT_EQ(cm.tn, 720u);
  EXPECT_EQ(cm.total(), 1000u);
}

TEST(ExpectedConfusionTest, TotalAlwaysPreserved) {
  for (const double sens : {0.0, 0.33, 0.77, 1.0}) {
    for (const double fallout : {0.0, 0.09, 1.0}) {
      for (const double prev : {0.001, 0.5, 0.999}) {
        const ConfusionMatrix cm =
            expected_confusion(sens, fallout, prev, 997);
        EXPECT_EQ(cm.total(), 997u)
            << sens << " " << fallout << " " << prev;
      }
    }
  }
}

TEST(ExpectedConfusionTest, PerfectDetector) {
  const ConfusionMatrix cm = expected_confusion(1.0, 0.0, 0.1, 1000);
  EXPECT_EQ(cm.tp, 100u);
  EXPECT_EQ(cm.fn, 0u);
  EXPECT_EQ(cm.fp, 0u);
  EXPECT_EQ(cm.tn, 900u);
}

TEST(ExpectedConfusionTest, RejectsBadArguments) {
  EXPECT_THROW(expected_confusion(-0.1, 0.1, 0.1, 100),
               std::invalid_argument);
  EXPECT_THROW(expected_confusion(0.5, 1.1, 0.1, 100), std::invalid_argument);
  EXPECT_THROW(expected_confusion(0.5, 0.1, 2.0, 100), std::invalid_argument);
  EXPECT_THROW(expected_confusion(0.5, 0.1, 0.1, 0), std::invalid_argument);
}

}  // namespace
}  // namespace vdbench::core
