#include "core/selection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace vdbench::core {
namespace {

ScenarioAnalyzer::Config fast_config() {
  ScenarioAnalyzer::Config cfg;
  cfg.pair_trials = 400;
  return cfg;
}

std::vector<MetricId> key_metrics() {
  return {MetricId::kPrecision, MetricId::kRecall, MetricId::kFMeasure,
          MetricId::kAccuracy, MetricId::kMcc, MetricId::kInformedness,
          MetricId::kNormalizedExpectedCost};
}

EffectivenessResult result_for(const std::vector<EffectivenessResult>& all,
                               MetricId id) {
  const auto it =
      std::find_if(all.begin(), all.end(),
                   [&](const EffectivenessResult& r) { return r.metric == id; });
  EXPECT_NE(it, all.end());
  return *it;
}

TEST(ScenarioAnalyzerTest, ConfigValidation) {
  ScenarioAnalyzer::Config cfg;
  cfg.pair_trials = 0;
  EXPECT_THROW(ScenarioAnalyzer{cfg}, std::invalid_argument);
  cfg = ScenarioAnalyzer::Config{};
  cfg.min_relative_cost_gap = 1.0;
  EXPECT_THROW(ScenarioAnalyzer{cfg}, std::invalid_argument);
}

TEST(ScenarioAnalyzerTest, ResultsWellFormed) {
  const ScenarioAnalyzer analyzer(fast_config());
  stats::Rng rng(1);
  const auto results =
      analyzer.analyze(builtin_scenario("s3_balanced"), key_metrics(), rng);
  ASSERT_EQ(results.size(), key_metrics().size());
  for (const EffectivenessResult& r : results) {
    EXPECT_GE(r.ranking_fidelity, 0.0);
    EXPECT_LE(r.ranking_fidelity, 1.0);
    EXPECT_GE(r.undefined_rate, 0.0);
    EXPECT_LE(r.undefined_rate, 1.0);
    EXPECT_EQ(r.trials, fast_config().pair_trials);
    EXPECT_GT(r.fidelity_se, 0.0);
    EXPECT_LT(r.fidelity_se, 0.05);
  }
}

TEST(ScenarioAnalyzerTest, DeterministicGivenSeed) {
  const ScenarioAnalyzer analyzer(fast_config());
  stats::Rng a(5), b(5);
  const auto ra =
      analyzer.analyze(builtin_scenario("s1_critical"), key_metrics(), a);
  const auto rb =
      analyzer.analyze(builtin_scenario("s1_critical"), key_metrics(), b);
  for (std::size_t i = 0; i < ra.size(); ++i)
    EXPECT_DOUBLE_EQ(ra[i].ranking_fidelity, rb[i].ranking_fidelity);
}

TEST(ScenarioAnalyzerTest, QualityMetricsBeatChance) {
  const ScenarioAnalyzer analyzer(fast_config());
  stats::Rng rng(2);
  const auto results =
      analyzer.analyze(builtin_scenario("s3_balanced"), key_metrics(), rng);
  for (const EffectivenessResult& r : results)
    EXPECT_GT(r.ranking_fidelity, 0.55) << metric_info(r.metric).key;
}

TEST(ScenarioAnalyzerTest, CostMetricDominatesInItsOwnScenario) {
  // The normalized-expected-cost metric evaluates exactly the scenario's
  // cost model, so it must be among the most faithful metrics everywhere.
  const ScenarioAnalyzer analyzer(fast_config());
  for (const std::string key : {"s1_critical", "s2_budget", "s4_rare"}) {
    stats::Rng rng(3);
    const auto results =
        analyzer.analyze(builtin_scenario(key), key_metrics(), rng);
    const double nec =
        result_for(results, MetricId::kNormalizedExpectedCost)
            .ranking_fidelity;
    const double accuracy =
        result_for(results, MetricId::kAccuracy).ranking_fidelity;
    EXPECT_GE(nec, accuracy - 0.02) << key;
  }
}

TEST(ScenarioAnalyzerTest, RecallBeatsPrecisionWhenMissesAreCostly) {
  const ScenarioAnalyzer analyzer(fast_config());
  stats::Rng rng(4);
  const auto results =
      analyzer.analyze(builtin_scenario("s1_critical"), key_metrics(), rng);
  EXPECT_GT(result_for(results, MetricId::kRecall).ranking_fidelity,
            result_for(results, MetricId::kPrecision).ranking_fidelity);
}

TEST(ScenarioAnalyzerTest, PrecisionBeatsRecallUnderReviewBudget) {
  const ScenarioAnalyzer analyzer(fast_config());
  stats::Rng rng(5);
  const auto results =
      analyzer.analyze(builtin_scenario("s2_budget"), key_metrics(), rng);
  EXPECT_GT(result_for(results, MetricId::kPrecision).ranking_fidelity,
            result_for(results, MetricId::kRecall).ranking_fidelity);
}

TEST(ScenarioAnalyzerTest, AnalyzeMetricMatchesBatchShape) {
  const ScenarioAnalyzer analyzer(fast_config());
  stats::Rng rng(6);
  const EffectivenessResult r = analyzer.analyze_metric(
      builtin_scenario("s3_balanced"), MetricId::kMcc, rng);
  EXPECT_EQ(r.metric, MetricId::kMcc);
  EXPECT_GT(r.ranking_fidelity, 0.5);
}

TEST(MetricSelectorTest, RejectsBadWeight) {
  MetricSelector::Config cfg;
  cfg.effectiveness_weight = 1.5;
  EXPECT_THROW(MetricSelector{cfg}, std::invalid_argument);
}

class SelectorFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    const PropertyAssessor assessor([] {
      AssessmentConfig cfg;
      cfg.trials = 80;
      cfg.asymptotic_items = 100'000;
      return cfg;
    }());
    stats::Rng arng(11);
    assessments_ = assessor.assess_all(arng);
    const ScenarioAnalyzer analyzer(fast_config());
    stats::Rng erng(12);
    effectiveness_ = analyzer.analyze(builtin_scenario("s3_balanced"),
                                      ranking_metrics(), erng);
  }

  std::vector<MetricAssessment> assessments_;
  std::vector<EffectivenessResult> effectiveness_;
};

TEST_F(SelectorFixture, RankingIsSortedAndComplete) {
  const MetricSelector selector;
  const ScenarioRecommendation rec = selector.recommend(
      builtin_scenario("s3_balanced"), assessments_, effectiveness_);
  EXPECT_EQ(rec.scenario_key, "s3_balanced");
  EXPECT_EQ(rec.ranked.size(), ranking_metrics().size());
  for (std::size_t i = 0; i + 1 < rec.ranked.size(); ++i)
    EXPECT_GE(rec.ranked[i].overall, rec.ranked[i + 1].overall);
}

TEST_F(SelectorFixture, OverallBlendsComponents) {
  MetricSelector::Config cfg;
  cfg.effectiveness_weight = 0.7;
  const ScenarioRecommendation rec = MetricSelector(cfg).recommend(
      builtin_scenario("s3_balanced"), assessments_, effectiveness_);
  for (const MetricRecommendation& r : rec.ranked) {
    EXPECT_NEAR(r.overall,
                0.7 * r.effectiveness + 0.3 * r.property_score, 1e-12);
  }
}

TEST_F(SelectorFixture, PureEffectivenessWeightMatchesFidelityOrdering) {
  MetricSelector::Config cfg;
  cfg.effectiveness_weight = 1.0;
  const ScenarioRecommendation rec = MetricSelector(cfg).recommend(
      builtin_scenario("s3_balanced"), assessments_, effectiveness_);
  double best_fidelity = 0.0;
  for (const EffectivenessResult& r : effectiveness_)
    best_fidelity = std::max(best_fidelity, r.ranking_fidelity);
  EXPECT_DOUBLE_EQ(rec.best().overall, best_fidelity);
}

TEST_F(SelectorFixture, RankOfAndAccessors) {
  const MetricSelector selector;
  const ScenarioRecommendation rec = selector.recommend(
      builtin_scenario("s3_balanced"), assessments_, effectiveness_);
  EXPECT_EQ(rec.rank_of(rec.best().metric), 0u);
  const auto scores = rec.overall_scores_in_catalogue_order(ranking_metrics());
  EXPECT_EQ(scores.size(), ranking_metrics().size());
  EXPECT_THROW(ScenarioRecommendation{}.best(), std::out_of_range);
}

TEST_F(SelectorFixture, MissingAssessmentThrows) {
  const MetricSelector selector;
  const std::vector<MetricAssessment> empty;
  EXPECT_THROW(selector.recommend(builtin_scenario("s3_balanced"), empty,
                                  effectiveness_),
               std::invalid_argument);
}

}  // namespace
}  // namespace vdbench::core
