#include "core/aggregation.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vdbench::core {
namespace {

EvalContext make_ctx(std::uint64_t tp, std::uint64_t fp, std::uint64_t tn,
                     std::uint64_t fn, double seconds = 10.0,
                     double kloc = 5.0) {
  EvalContext ctx;
  ctx.cm = ConfusionMatrix{.tp = tp, .fp = fp, .tn = tn, .fn = fn};
  ctx.analysis_seconds = seconds;
  ctx.kloc = kloc;
  ctx.auc = 0.8;
  return ctx;
}

TEST(PoolContextsTest, CountsAndOperationalsAdd) {
  const std::vector<EvalContext> ctxs = {make_ctx(10, 5, 80, 5, 10.0, 5.0),
                                         make_ctx(20, 10, 160, 10, 30.0, 15.0)};
  const EvalContext pooled = pool_contexts(ctxs);
  EXPECT_EQ(pooled.cm, (ConfusionMatrix{.tp = 30, .fp = 15, .tn = 240,
                                        .fn = 15}));
  EXPECT_DOUBLE_EQ(pooled.analysis_seconds, 40.0);
  EXPECT_DOUBLE_EQ(pooled.kloc, 20.0);
}

TEST(PoolContextsTest, AucIsTpWeighted) {
  EvalContext a = make_ctx(10, 0, 90, 0);
  a.auc = 1.0;
  EvalContext b = make_ctx(30, 0, 70, 0);
  b.auc = 0.6;
  const EvalContext pooled = pool_contexts(std::vector<EvalContext>{a, b});
  EXPECT_NEAR(pooled.auc, (10.0 * 1.0 + 30.0 * 0.6) / 40.0, 1e-12);
}

TEST(PoolContextsTest, MissingOperationalPropagates) {
  EvalContext a = make_ctx(10, 5, 80, 5);
  EvalContext b = make_ctx(10, 5, 80, 5);
  b.analysis_seconds = std::numeric_limits<double>::quiet_NaN();
  const EvalContext pooled = pool_contexts(std::vector<EvalContext>{a, b});
  EXPECT_TRUE(std::isnan(pooled.analysis_seconds));
  EXPECT_TRUE(std::isfinite(pooled.kloc));
}

TEST(PoolContextsTest, RejectsMixedCostModels) {
  EvalContext a = make_ctx(10, 5, 80, 5);
  EvalContext b = make_ctx(10, 5, 80, 5);
  b.cost_fn = 99.0;
  EXPECT_THROW(pool_contexts(std::vector<EvalContext>{a, b}),
               std::invalid_argument);
  EXPECT_THROW(pool_contexts(std::vector<EvalContext>{}),
               std::invalid_argument);
}

TEST(MicroMacroTest, AgreeOnHomogeneousWorkloads) {
  const std::vector<EvalContext> ctxs = {make_ctx(10, 5, 80, 5),
                                         make_ctx(10, 5, 80, 5),
                                         make_ctx(10, 5, 80, 5)};
  EXPECT_NEAR(micro_average(MetricId::kPrecision, ctxs),
              macro_average(MetricId::kPrecision, ctxs), 1e-12);
  EXPECT_NEAR(micro_average(MetricId::kRecall, ctxs),
              macro_average(MetricId::kRecall, ctxs), 1e-12);
}

TEST(MicroMacroTest, LargeWorkloadDominatesMicroOnly) {
  // Small workload: perfect precision. Huge workload: poor precision.
  const std::vector<EvalContext> ctxs = {make_ctx(10, 0, 90, 0),
                                         make_ctx(100, 900, 8000, 1000)};
  const double micro = micro_average(MetricId::kPrecision, ctxs);
  const double macro = macro_average(MetricId::kPrecision, ctxs);
  // micro = 110/1010 ~ 0.109; macro = (1.0 + 0.1)/2 = 0.55.
  EXPECT_NEAR(micro, 110.0 / 1010.0, 1e-12);
  EXPECT_NEAR(macro, 0.55, 1e-12);
  EXPECT_GT(macro, micro);
}

TEST(MicroMacroTest, CanDisagreeOnToolOrdering) {
  // Tool A: mediocre everywhere. Tool B: great on the small workload,
  // poor on the big one. Macro prefers B, micro prefers A.
  const std::vector<EvalContext> tool_a = {make_ctx(6, 4, 90, 4),
                                           make_ctx(600, 400, 9000, 400)};
  const std::vector<EvalContext> tool_b = {make_ctx(10, 0, 94, 0),
                                           make_ctx(300, 900, 8500, 700)};
  const double micro_a = micro_average(MetricId::kFMeasure, tool_a);
  const double micro_b = micro_average(MetricId::kFMeasure, tool_b);
  const double macro_a = macro_average(MetricId::kFMeasure, tool_a);
  const double macro_b = macro_average(MetricId::kFMeasure, tool_b);
  EXPECT_GT(micro_a, micro_b);
  EXPECT_GT(macro_b, macro_a);
}

TEST(MicroMacroTest, UndefinedPolicyControlsResult) {
  // Second workload has no predictions: precision undefined there.
  const std::vector<EvalContext> ctxs = {make_ctx(10, 5, 80, 5),
                                         make_ctx(0, 0, 95, 5)};
  const double skipped =
      macro_average(MetricId::kPrecision, ctxs, UndefinedPolicy::kSkip);
  EXPECT_NEAR(skipped, 10.0 / 15.0, 1e-12);
  const double propagated =
      macro_average(MetricId::kPrecision, ctxs, UndefinedPolicy::kPropagate);
  EXPECT_TRUE(std::isnan(propagated));
  // Micro still defined: pooling rescues the undefined workload.
  EXPECT_TRUE(std::isfinite(micro_average(MetricId::kPrecision, ctxs)));
}

TEST(MicroMacroTest, AllUndefinedGivesNaN) {
  const std::vector<EvalContext> ctxs = {make_ctx(0, 0, 95, 5),
                                         make_ctx(0, 0, 90, 10)};
  EXPECT_TRUE(std::isnan(
      macro_average(MetricId::kPrecision, ctxs, UndefinedPolicy::kSkip)));
}

TEST(CompareAggregatesTest, ReportsAllFields) {
  const std::vector<EvalContext> ctxs = {make_ctx(10, 0, 90, 0),
                                         make_ctx(100, 900, 8000, 1000),
                                         make_ctx(0, 0, 95, 5)};
  const AggregateComparison cmp =
      compare_aggregates(MetricId::kPrecision, ctxs);
  EXPECT_EQ(cmp.metric, MetricId::kPrecision);
  EXPECT_EQ(cmp.workloads, 3u);
  EXPECT_EQ(cmp.undefined_workloads, 1u);
  EXPECT_GT(cmp.per_workload_stddev, 0.0);
  EXPECT_TRUE(std::isfinite(cmp.micro));
  EXPECT_TRUE(std::isfinite(cmp.macro));
}

}  // namespace
}  // namespace vdbench::core
