#include "core/roc.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/hypothesis.h"
#include "stats/rng.h"

namespace vdbench::core {
namespace {

std::vector<ScoredItem> perfect_separation() {
  return {{0.9, true}, {0.8, true}, {0.7, true},
          {0.3, false}, {0.2, false}, {0.1, false}};
}

TEST(RocCurveTest, PerfectSeparationAucIsOne) {
  const RocCurve roc{perfect_separation()};
  EXPECT_DOUBLE_EQ(roc.auc(), 1.0);
  EXPECT_EQ(roc.positives(), 3u);
  EXPECT_EQ(roc.negatives(), 3u);
}

TEST(RocCurveTest, ReversedSeparationAucIsZero) {
  const std::vector<ScoredItem> items = {{0.9, false}, {0.8, false},
                                         {0.2, true},  {0.1, true}};
  EXPECT_DOUBLE_EQ(RocCurve{items}.auc(), 0.0);
}

TEST(RocCurveTest, AllTiedScoresGiveHalf) {
  const std::vector<ScoredItem> items = {{0.5, true}, {0.5, true},
                                         {0.5, false}, {0.5, false}};
  EXPECT_DOUBLE_EQ(RocCurve{items}.auc(), 0.5);
}

TEST(RocCurveTest, HandComputedAucWithInterleaving) {
  // positives at 0.9, 0.4; negatives at 0.6, 0.1.
  // pairs: (0.9>0.6)=1, (0.9>0.1)=1, (0.4<0.6)=0, (0.4>0.1)=1 -> 3/4.
  const std::vector<ScoredItem> items = {{0.9, true}, {0.4, true},
                                         {0.6, false}, {0.1, false}};
  EXPECT_DOUBLE_EQ(RocCurve{items}.auc(), 0.75);
}

TEST(RocCurveTest, PointsTraverseFromOriginToCorner) {
  const RocCurve roc{perfect_separation()};
  const auto& pts = roc.points();
  EXPECT_DOUBLE_EQ(pts.front().tpr, 0.0);
  EXPECT_DOUBLE_EQ(pts.front().fpr, 0.0);
  EXPECT_DOUBLE_EQ(pts.back().tpr, 1.0);
  EXPECT_DOUBLE_EQ(pts.back().fpr, 1.0);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].tpr, pts[i - 1].tpr);
    EXPECT_GE(pts[i].fpr, pts[i - 1].fpr);
  }
}

TEST(RocCurveTest, ConfusionCountsConsistentAtEveryPoint) {
  stats::Rng rng(1);
  std::vector<ScoredItem> items;
  for (int i = 0; i < 200; ++i)
    items.push_back({rng.uniform(), rng.bernoulli(0.3)});
  const RocCurve roc{items};
  for (const RocPoint& p : roc.points()) {
    EXPECT_EQ(p.tp + p.fn, roc.positives());
    EXPECT_EQ(p.fp + p.tn, roc.negatives());
  }
}

TEST(RocCurveTest, RequiresBothClasses) {
  const std::vector<ScoredItem> only_pos = {{0.5, true}, {0.6, true}};
  const std::vector<ScoredItem> only_neg = {{0.5, false}};
  EXPECT_THROW(RocCurve{only_pos}, std::invalid_argument);
  EXPECT_THROW(RocCurve{only_neg}, std::invalid_argument);
}

TEST(RocCurveTest, MatchesBinormalTheory) {
  // Scores ~ N(1,1) for positives, N(0,1) for negatives: AUC should
  // approach Phi(1/sqrt(2)).
  stats::Rng rng(2);
  std::vector<ScoredItem> items;
  for (int i = 0; i < 4000; ++i) {
    const bool positive = i % 2 == 0;
    items.push_back({rng.normal(positive ? 1.0 : 0.0, 1.0), positive});
  }
  EXPECT_NEAR(RocCurve{items}.auc(),
              stats::normal_cdf(1.0 / std::sqrt(2.0)), 0.02);
}

TEST(OptimalPointTest, MissHeavyCostsPushThresholdDown) {
  stats::Rng rng(3);
  std::vector<ScoredItem> items;
  for (int i = 0; i < 2000; ++i) {
    const bool positive = rng.bernoulli(0.2);
    items.push_back({rng.normal(positive ? 1.2 : 0.0, 1.0), positive});
  }
  const RocCurve roc{items};
  const RocPoint& recall_heavy = roc.optimal_point(20.0, 1.0);
  const RocPoint& precision_heavy = roc.optimal_point(1.0, 20.0);
  EXPECT_LT(recall_heavy.threshold, precision_heavy.threshold);
  EXPECT_GT(recall_heavy.tpr, precision_heavy.tpr);
  EXPECT_GT(recall_heavy.fpr, precision_heavy.fpr);
}

TEST(OptimalPointTest, RejectsNegativeCosts) {
  const RocCurve roc{perfect_separation()};
  EXPECT_THROW(roc.optimal_point(-1.0, 1.0), std::invalid_argument);
}

TEST(YoudenPointTest, PerfectSeparationHitsCorner) {
  const RocCurve roc{perfect_separation()};
  const RocPoint& p = roc.youden_point();
  EXPECT_DOUBLE_EQ(p.tpr, 1.0);
  EXPECT_DOUBLE_EQ(p.fpr, 0.0);
}

TEST(TprAtFprTest, InterpolatesAndClamps) {
  const RocCurve roc{perfect_separation()};
  EXPECT_DOUBLE_EQ(roc.tpr_at_fpr(0.0), 1.0);  // perfect curve
  EXPECT_DOUBLE_EQ(roc.tpr_at_fpr(1.0), 1.0);
  EXPECT_THROW(roc.tpr_at_fpr(-0.1), std::invalid_argument);
  EXPECT_THROW(roc.tpr_at_fpr(1.5), std::invalid_argument);
}

TEST(TprAtFprTest, MonotoneInBudget) {
  stats::Rng rng(4);
  std::vector<ScoredItem> items;
  for (int i = 0; i < 500; ++i) {
    const bool positive = rng.bernoulli(0.4);
    items.push_back({rng.normal(positive ? 0.8 : 0.0, 1.0), positive});
  }
  const RocCurve roc{items};
  double last = 0.0;
  for (const double budget : {0.01, 0.05, 0.1, 0.3, 0.7, 1.0}) {
    const double tpr = roc.tpr_at_fpr(budget);
    EXPECT_GE(tpr, last);
    last = tpr;
  }
}

}  // namespace
}  // namespace vdbench::core
