// BatchEvaluator contract tests: bitwise scalar/batch equality over random
// and degenerate grids, the documented degenerate-value policy, overflow
// behaviour at billion-count scale, and the zero-allocation guarantee of a
// warmed-up arena.
#include "core/batch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <vector>

#include "core/metrics.h"
#include "core/sampling.h"
#include "stats/arena.h"
#include "stats/rng.h"

// Global-allocation counter for the zero-allocation assertion. Sanitizer
// builds keep the default operator new (ASan/TSan interpose their own and
// must see every call), so that test is compiled out there.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define VDBENCH_COUNT_ALLOCS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define VDBENCH_COUNT_ALLOCS 0
#else
#define VDBENCH_COUNT_ALLOCS 1
#endif
#else
#define VDBENCH_COUNT_ALLOCS 1
#endif

#if VDBENCH_COUNT_ALLOCS
// GCC pairs inlined default-new call sites with the replacement delete and
// warns; the replacement pair below is malloc/free-consistent throughout.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace {
std::atomic<std::uint64_t> g_allocation_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif

namespace vdbench::core {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// Random context with deliberately frequent zero cells so degenerate
// denominators appear throughout the grid, plus occasional missing
// operational measurements and varied costs.
EvalContext random_context(stats::Rng& rng) {
  const auto cell = [&](std::int64_t hi) -> std::uint64_t {
    if (rng.bernoulli(0.15)) return 0;
    return static_cast<std::uint64_t>(rng.uniform_int(0, hi));
  };
  EvalContext ctx = make_abstract_context(
      ConfusionMatrix{.tp = cell(400),
                      .fp = cell(400),
                      .tn = cell(4000),
                      .fn = cell(400)},
      /*cost_fn=*/rng.bernoulli(0.5) ? 5.0 : 1.0,
      /*cost_fp=*/1.0);
  if (rng.bernoulli(0.1)) ctx.auc = kNaN;
  if (rng.bernoulli(0.1)) {
    ctx.analysis_seconds = kNaN;
    ctx.kloc = kNaN;
  }
  return ctx;
}

// Hand-picked degenerate corners: every zero-denominator family in the
// policy table of core/metrics.h, with and without operational data.
std::vector<EvalContext> degenerate_corners() {
  std::vector<EvalContext> out;
  const auto add = [&](std::uint64_t tp, std::uint64_t fp, std::uint64_t tn,
                       std::uint64_t fn) {
    EvalContext bare;  // missing operational data (NaN seconds/kloc/auc)
    bare.cm = ConfusionMatrix{.tp = tp, .fp = fp, .tn = tn, .fn = fn};
    out.push_back(bare);
    out.push_back(make_abstract_context(bare.cm, 5.0, 1.0));
  };
  add(0, 0, 0, 0);                          // empty matrix
  add(1, 0, 0, 0);                          // single-cell corners
  add(0, 1, 0, 0);
  add(0, 0, 1, 0);
  add(0, 0, 0, 1);
  add(5, 0, 5, 0);                          // perfect detector
  add(0, 5, 0, 5);                          // perfectly wrong
  add(5, 5, 0, 0);                          // everything flagged
  add(0, 0, 5, 5);                          // nothing flagged
  add(5, 0, 0, 5);                          // no negatives answered
  add(0, 5, 5, 0);                          // no positives answered
  add(3, 0, 7, 2);                          // FPR == 0 < TPR: LR+ = +inf
  add(3, 4, 0, 2);                          // TNR == 0 < FNR: LR- = +inf
  add(3, 4, 0, 0);                          // TNR == FNR == 0: LR- = NaN
  add(5, 0, 5, 1);                          // FP == 0: DOR = +inf
  add(5, 1, 5, 0);                          // FN == 0: DOR = +inf
  EvalContext zero_cost;                    // all-zero worst case for NEC
  zero_cost.cm = ConfusionMatrix{.tp = 2, .fp = 3, .tn = 4, .fn = 5};
  zero_cost.cost_fn = 0.0;
  zero_cost.cost_fp = 0.0;
  out.push_back(zero_cost);
  return out;
}

void expect_batch_matches_scalar(std::span<const EvalContext> contexts) {
  stats::Arena arena;
  const ConfusionBatch batch = make_batch(contexts, arena);
  const BatchEvaluator evaluator(arena);

  // Full plane vs per-context scalar rows.
  const std::span<double> plane =
      arena.allocate_span<double>(contexts.size() * kMetricCount);
  evaluator.evaluate_all(batch, plane);
  for (std::size_t i = 0; i < contexts.size(); ++i) {
    const std::vector<double> scalar = compute_all_metrics(contexts[i]);
    for (std::size_t m = 0; m < kMetricCount; ++m) {
      EXPECT_EQ(bits(plane[i * kMetricCount + m]), bits(scalar[m]))
          << "context " << i << " (" << contexts[i].cm.to_string()
          << ") metric " << metric_info(all_metrics()[m]).key << ": batch "
          << plane[i * kMetricCount + m] << " vs scalar " << scalar[m];
    }
  }

  // Single-metric path must agree with the full plane too.
  const std::span<double> column = arena.allocate_span<double>(contexts.size());
  for (const MetricId id : all_metrics()) {
    evaluator.evaluate_metric(id, batch, column);
    for (std::size_t i = 0; i < contexts.size(); ++i) {
      EXPECT_EQ(bits(column[i]), bits(compute_metric(id, contexts[i])))
          << "context " << i << " metric " << metric_info(id).key;
    }
  }
}

TEST(BatchEvaluatorTest, MatchesScalarBitwiseOnRandomGrid) {
  stats::Rng rng(20150622);
  std::vector<EvalContext> contexts;
  contexts.reserve(512);
  for (std::size_t i = 0; i < 512; ++i) contexts.push_back(random_context(rng));
  expect_batch_matches_scalar(contexts);
}

TEST(BatchEvaluatorTest, MatchesScalarBitwiseOnDegenerateCorners) {
  expect_batch_matches_scalar(degenerate_corners());
}

TEST(BatchEvaluatorTest, DegeneratePolicySpotChecks) {
  const auto metric_of = [](std::uint64_t tp, std::uint64_t fp,
                            std::uint64_t tn, std::uint64_t fn, MetricId id) {
    EvalContext ctx;
    ctx.cm = ConfusionMatrix{.tp = tp, .fp = fp, .tn = tn, .fn = fn};
    return compute_metric(id, ctx);
  };
  // Unbounded ratios: positive numerator over a zero denominator is +inf.
  EXPECT_EQ(metric_of(3, 0, 7, 2, MetricId::kLrPlus), kInf);
  EXPECT_EQ(metric_of(3, 4, 0, 2, MetricId::kLrMinus), kInf);
  EXPECT_EQ(metric_of(5, 0, 5, 1, MetricId::kDiagnosticOddsRatio), kInf);
  // Indeterminate 0/0 forms are NaN.
  EXPECT_TRUE(std::isnan(metric_of(0, 0, 0, 0, MetricId::kAccuracy)));
  EXPECT_TRUE(std::isnan(metric_of(0, 0, 5, 5, MetricId::kPrecision)));
  EXPECT_TRUE(std::isnan(metric_of(0, 5, 5, 0, MetricId::kRecall)));
  EXPECT_TRUE(std::isnan(metric_of(3, 4, 0, 0, MetricId::kLrMinus)));
  EXPECT_TRUE(std::isnan(metric_of(5, 5, 0, 0, MetricId::kMcc)));
  // F-family with P == R == 0 is a legitimate worst score, not undefined.
  EXPECT_EQ(metric_of(0, 5, 0, 5, MetricId::kFMeasure), 0.0);
  EXPECT_EQ(metric_of(0, 5, 0, 5, MetricId::kFHalf), 0.0);
  EXPECT_EQ(metric_of(0, 5, 0, 5, MetricId::kF2), 0.0);
}

TEST(BatchEvaluatorTest, RejectsMismatchedOutputSizes) {
  const std::vector<EvalContext> contexts(3);
  stats::Arena arena;
  const ConfusionBatch batch = make_batch(contexts, arena);
  const BatchEvaluator evaluator(arena);
  std::vector<double> wrong(4);
  EXPECT_THROW(evaluator.evaluate_metric(MetricId::kMcc, batch, wrong),
               std::invalid_argument);
  EXPECT_THROW(evaluator.evaluate_all(batch, wrong), std::invalid_argument);
}

TEST(BatchEvaluatorTest, EmptyBatchIsANoOp) {
  stats::Arena arena;
  const ConfusionBatch batch =
      make_batch(std::span<const EvalContext>{}, arena);
  const BatchEvaluator evaluator(arena);
  evaluator.evaluate_metric(MetricId::kMcc, batch, {});
  evaluator.evaluate_all(batch, {});
}

TEST(ComputeAllMetricsTest, OutParamOverloadMatchesVectorOverload) {
  stats::Rng rng(7);
  for (std::size_t i = 0; i < 64; ++i) {
    const EvalContext ctx = random_context(rng);
    const std::vector<double> heap = compute_all_metrics(ctx);
    std::vector<double> flat(kMetricCount);
    compute_all_metrics(ctx, flat);
    for (std::size_t m = 0; m < kMetricCount; ++m)
      EXPECT_EQ(bits(flat[m]), bits(heap[m]));
  }
  std::vector<double> wrong(kMetricCount - 1);
  EXPECT_THROW(compute_all_metrics(EvalContext{}, wrong),
               std::invalid_argument);
}

// EvalContext counts are 64-bit and every kernel promotes to double (or
// sums in uint64) before arithmetic: billion-count matrices — far past the
// 10^7-site scale of the largest configured study, and past 32-bit
// overflow — must produce exact, finite values, identical in both paths.
TEST(BatchEvaluatorTest, BillionCountMatricesDoNotOverflow) {
  constexpr std::uint64_t kBillion = 3'000'000'000ULL;  // > 2^31
  EvalContext big;
  big.cm = ConfusionMatrix{
      .tp = kBillion, .fp = kBillion / 3, .tn = kBillion, .fn = kBillion / 3};
  const EvalContext balanced{.cm = ConfusionMatrix{.tp = kBillion,
                                                   .fp = kBillion,
                                                   .tn = kBillion,
                                                   .fn = kBillion}};
  // Exact expectations on the balanced matrix: total 12e9 < 2^53, so the
  // double arithmetic is exact.
  EXPECT_EQ(compute_metric(MetricId::kAccuracy, balanced), 0.5);
  EXPECT_EQ(compute_metric(MetricId::kPrevalence, balanced), 0.5);
  EXPECT_EQ(compute_metric(MetricId::kPrecision, balanced), 0.5);
  EXPECT_EQ(compute_metric(MetricId::kMcc, balanced), 0.0);
  for (const MetricId id :
       {MetricId::kMcc, MetricId::kKappa, MetricId::kAccuracy,
        MetricId::kDiagnosticOddsRatio, MetricId::kFMeasure,
        MetricId::kBalancedAccuracy}) {
    const double v = compute_metric(id, big);
    EXPECT_TRUE(std::isfinite(v)) << metric_info(id).key;
  }
  EXPECT_NEAR(compute_metric(MetricId::kAccuracy, big), 0.75, 1e-12);
  const std::vector<EvalContext> contexts = {big, balanced};
  expect_batch_matches_scalar(contexts);
}

#if VDBENCH_COUNT_ALLOCS
TEST(BatchEvaluatorTest, WarmedUpBatchPathDoesNotTouchTheHeap) {
  stats::Rng rng(11);
  std::vector<EvalContext> contexts;
  contexts.reserve(256);
  for (std::size_t i = 0; i < 256; ++i) contexts.push_back(random_context(rng));

  stats::Arena arena;
  // Warm-up pass sizes the arena blocks.
  {
    const ConfusionBatch batch = make_batch(contexts, arena);
    const BatchEvaluator evaluator(arena);
    const std::span<double> plane =
        arena.allocate_span<double>(contexts.size() * kMetricCount);
    evaluator.evaluate_all(batch, plane);
  }
  arena.reset();

  const std::uint64_t allocs_before =
      g_allocation_count.load(std::memory_order_relaxed);
  for (int repeat = 0; repeat < 10; ++repeat) {
    const ConfusionBatch batch = make_batch(contexts, arena);
    const BatchEvaluator evaluator(arena);
    const std::span<double> plane =
        arena.allocate_span<double>(contexts.size() * kMetricCount);
    evaluator.evaluate_all(batch, plane);
    evaluator.evaluate_metric(MetricId::kMcc, batch,
                              plane.subspan(0, contexts.size()));
    arena.reset();
  }
  EXPECT_EQ(g_allocation_count.load(std::memory_order_relaxed), allocs_before)
      << "warmed-up make_batch/evaluate_* must be allocation-free";
}
#endif

}  // namespace
}  // namespace vdbench::core
