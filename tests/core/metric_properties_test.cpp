// Algebraic property sweeps over the metric catalogue on random
// benchmarks: scale invariance, complement identities, and cross-metric
// relations that must hold exactly.
#include <gtest/gtest.h>

#include <cmath>

#include "core/sampling.h"
#include "stats/rng.h"

namespace vdbench::core {
namespace {

std::vector<ConfusionMatrix> random_matrices(std::size_t n,
                                             std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<ConfusionMatrix> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const DetectorProfile d{rng.uniform(), rng.uniform()};
    out.push_back(
        sample_confusion(d, rng.uniform(0.01, 0.6), 400, rng));
  }
  return out;
}

class MetricAlgebraTest : public ::testing::TestWithParam<MetricId> {};

INSTANTIATE_TEST_SUITE_P(
    Catalogue, MetricAlgebraTest,
    ::testing::ValuesIn(all_metrics().begin(), all_metrics().end()),
    [](const ::testing::TestParamInfo<MetricId>& info) {
      return std::string(metric_info(info.param).key);
    });

TEST_P(MetricAlgebraTest, ScaleInvariantUnderCountMultiplication) {
  // Multiplying every confusion count by k leaves every catalogue metric
  // unchanged (the abstract context derives operational fields from
  // totals, so they scale coherently too).
  for (const ConfusionMatrix& cm : random_matrices(30, 42)) {
    ConfusionMatrix scaled = cm;
    scaled.tp *= 7;
    scaled.fp *= 7;
    scaled.tn *= 7;
    scaled.fn *= 7;
    const double v = compute_metric(
        GetParam(), make_abstract_context(cm, 5.0, 1.0));
    const double v_scaled = compute_metric(
        GetParam(), make_abstract_context(scaled, 5.0, 1.0));
    if (!std::isfinite(v) || !std::isfinite(v_scaled)) {
      // Definedness must also be scale-invariant.
      EXPECT_EQ(std::isfinite(v), std::isfinite(v_scaled))
          << metric_info(GetParam()).key << " on " << cm.to_string();
      continue;
    }
    EXPECT_NEAR(v, v_scaled, 1e-9)
        << metric_info(GetParam()).key << " on " << cm.to_string();
  }
}

TEST(MetricIdentityTest, ComplementPairsSumToOne) {
  for (const ConfusionMatrix& cm : random_matrices(50, 7)) {
    const EvalContext ctx = make_abstract_context(cm, 1.0, 1.0);
    const auto pair_sums_to_one = [&](MetricId a, MetricId b) {
      const double va = compute_metric(a, ctx);
      const double vb = compute_metric(b, ctx);
      if (std::isfinite(va) && std::isfinite(vb))
        EXPECT_NEAR(va + vb, 1.0, 1e-12)
            << metric_info(a).key << "+" << metric_info(b).key;
    };
    pair_sums_to_one(MetricId::kAccuracy, MetricId::kErrorRate);
    pair_sums_to_one(MetricId::kRecall, MetricId::kFnRate);
    pair_sums_to_one(MetricId::kSpecificity, MetricId::kFpRate);
    pair_sums_to_one(MetricId::kPrecision, MetricId::kFdRate);
    pair_sums_to_one(MetricId::kNpv, MetricId::kFoRate);
  }
}

TEST(MetricIdentityTest, MccIsGeometricMeanOfJAndMarkednessWhenPositive) {
  for (const ConfusionMatrix& cm : random_matrices(60, 9)) {
    const EvalContext ctx = make_abstract_context(cm, 1.0, 1.0);
    const double mcc = compute_metric(MetricId::kMcc, ctx);
    const double j = compute_metric(MetricId::kInformedness, ctx);
    const double mk = compute_metric(MetricId::kMarkedness, ctx);
    if (!std::isfinite(mcc) || !std::isfinite(j) || !std::isfinite(mk))
      continue;
    if (j <= 0.0 || mk <= 0.0) continue;
    EXPECT_NEAR(mcc, std::sqrt(j * mk), 1e-9) << cm.to_string();
  }
}

TEST(MetricIdentityTest, FowlkesMallowsBoundsF1) {
  // Geometric mean >= harmonic mean: FM >= F1 always, equality iff P == R.
  for (const ConfusionMatrix& cm : random_matrices(60, 11)) {
    const EvalContext ctx = make_abstract_context(cm, 1.0, 1.0);
    const double fm = compute_metric(MetricId::kFowlkesMallows, ctx);
    const double f1 = compute_metric(MetricId::kFMeasure, ctx);
    if (!std::isfinite(fm) || !std::isfinite(f1)) continue;
    EXPECT_GE(fm, f1 - 1e-12) << cm.to_string();
  }
}

TEST(MetricIdentityTest, BalancedAccuracyIsAffineInformedness) {
  for (const ConfusionMatrix& cm : random_matrices(40, 13)) {
    const EvalContext ctx = make_abstract_context(cm, 1.0, 1.0);
    const double ba = compute_metric(MetricId::kBalancedAccuracy, ctx);
    const double j = compute_metric(MetricId::kInformedness, ctx);
    if (!std::isfinite(ba) || !std::isfinite(j)) continue;
    EXPECT_NEAR(ba, (j + 1.0) / 2.0, 1e-12);
  }
}

TEST(MetricIdentityTest, EqualCostsMakeWbaEqualBalancedAccuracy) {
  for (const ConfusionMatrix& cm : random_matrices(40, 17)) {
    const EvalContext ctx = make_abstract_context(cm, 3.0, 3.0);
    const double wba =
        compute_metric(MetricId::kWeightedBalancedAccuracy, ctx);
    const double ba = compute_metric(MetricId::kBalancedAccuracy, ctx);
    if (!std::isfinite(wba) || !std::isfinite(ba)) continue;
    EXPECT_NEAR(wba, ba, 1e-12);
  }
}

TEST(MetricIdentityTest, NecEqualsErrorRateUnderUnitCosts) {
  for (const ConfusionMatrix& cm : random_matrices(40, 19)) {
    const EvalContext ctx = make_abstract_context(cm, 1.0, 1.0);
    const double nec =
        compute_metric(MetricId::kNormalizedExpectedCost, ctx);
    const double err = compute_metric(MetricId::kErrorRate, ctx);
    if (!std::isfinite(nec) || !std::isfinite(err)) continue;
    EXPECT_NEAR(nec, err, 1e-12) << cm.to_string();
  }
}

}  // namespace
}  // namespace vdbench::core
