#include "core/study.h"

#include <gtest/gtest.h>

namespace vdbench::core {
namespace {

StudyConfig fast_study_config() {
  StudyConfig cfg;
  cfg.assessment.trials = 60;
  cfg.assessment.asymptotic_items = 50'000;
  cfg.analyzer.pair_trials = 250;
  cfg.seed = 99;
  return cfg;
}

class StudyFixture : public ::testing::Test {
 protected:
  static const Study& study() {
    static const Study s = [] {
      Study st(fast_study_config());
      st.run();
      return st;
    }();
    return s;
  }
};

TEST_F(StudyFixture, CoversBuiltinScenariosByDefault) {
  EXPECT_EQ(study().scenarios().size(), builtin_scenarios().size());
  EXPECT_TRUE(study().has_run());
}

TEST_F(StudyFixture, AccessorsReturnConsistentShapes) {
  EXPECT_EQ(study().assessments().size(), kMetricCount);
  for (const Scenario& s : study().scenarios()) {
    EXPECT_EQ(study().effectiveness(s.key).size(),
              ranking_metrics().size());
    EXPECT_EQ(study().recommendation(s.key).ranked.size(),
              ranking_metrics().size());
    EXPECT_EQ(study().validation(s.key).metrics.size(),
              ranking_metrics().size());
  }
}

TEST_F(StudyFixture, UnknownScenarioKeyThrows) {
  EXPECT_THROW((void)study().recommendation("nope"), std::invalid_argument);
  EXPECT_THROW((void)study().effectiveness("nope"), std::invalid_argument);
  EXPECT_THROW((void)study().validation("nope"), std::invalid_argument);
}

TEST_F(StudyFixture, ValidatedVerdictMatchesPerScenarioOutcomes) {
  bool all_agree = true;
  for (const Scenario& s : study().scenarios()) {
    const ValidationOutcome& v = study().validation(s.key);
    all_agree = all_agree && v.same_top && v.ahp.acceptable();
  }
  EXPECT_EQ(study().validated(), all_agree);
}

TEST(StudyTest, ThrowsBeforeRun) {
  const Study s(fast_study_config());
  EXPECT_FALSE(s.has_run());
  EXPECT_THROW((void)s.assessments(), std::logic_error);
  EXPECT_THROW((void)s.validated(), std::logic_error);
}

TEST(StudyTest, DeterministicGivenSeed) {
  Study a(fast_study_config());
  Study b(fast_study_config());
  a.run();
  b.run();
  for (const Scenario& s : a.scenarios()) {
    EXPECT_EQ(a.recommendation(s.key).best().metric,
              b.recommendation(s.key).best().metric);
    EXPECT_DOUBLE_EQ(a.validation(s.key).kendall_agreement,
                     b.validation(s.key).kendall_agreement);
  }
}

TEST(StudyTest, DifferentSeedsMayDifferButStayWellFormed) {
  StudyConfig cfg = fast_study_config();
  cfg.seed = 100;
  Study s(cfg);
  s.run();
  for (const Scenario& sc : s.scenarios()) {
    for (const MetricRecommendation& r : s.recommendation(sc.key).ranked) {
      EXPECT_GE(r.overall, 0.0);
      EXPECT_LE(r.overall, 1.0);
    }
  }
}

TEST(StudyTest, CustomScenarioListIsHonored) {
  StudyConfig cfg = fast_study_config();
  cfg.scenarios = {builtin_scenario("s3_balanced")};
  Study s(cfg);
  s.run();
  EXPECT_EQ(s.scenarios().size(), 1u);
  EXPECT_NO_THROW((void)s.recommendation("s3_balanced"));
  EXPECT_THROW((void)s.recommendation("s1_critical"), std::invalid_argument);
}

TEST(StudyTest, InvalidSubConfigRejectedAtConstruction) {
  StudyConfig cfg = fast_study_config();
  cfg.assessment.trials = 0;
  EXPECT_THROW(Study{cfg}, std::invalid_argument);
  cfg = fast_study_config();
  cfg.analyzer.pair_trials = 0;
  EXPECT_THROW(Study{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace vdbench::core
