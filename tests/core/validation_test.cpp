#include "core/validation.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "stats/rank.h"

namespace vdbench::core {
namespace {

class ValidationFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    AssessmentConfig acfg;
    acfg.trials = 80;
    acfg.asymptotic_items = 100'000;
    const PropertyAssessor assessor(acfg);
    stats::Rng arng(21);
    assessments_ = assessor.assess_all(arng);

    ScenarioAnalyzer::Config ecfg;
    ecfg.pair_trials = 400;
    const ScenarioAnalyzer analyzer(ecfg);
    stats::Rng erng(22);
    effectiveness_ = analyzer.analyze(builtin_scenario("s3_balanced"),
                                      ranking_metrics(), erng);
  }

  std::vector<MetricAssessment> assessments_;
  std::vector<EffectivenessResult> effectiveness_;
};

TEST(ValidationConfigTest, Validation) {
  ValidationConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
  cfg.expert_count = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = ValidationConfig{};
  cfg.judgment_noise = -0.1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = ValidationConfig{};
  cfg.fit_criterion_weight = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST_F(ValidationFixture, OutcomeWellFormed) {
  const McdaValidator validator;
  stats::Rng rng(1);
  const ValidationOutcome out = validator.validate(
      builtin_scenario("s3_balanced"), assessments_, effectiveness_, rng);
  EXPECT_EQ(out.scenario_key, "s3_balanced");
  EXPECT_EQ(out.metrics.size(), ranking_metrics().size());
  EXPECT_EQ(out.mcda_scores.size(), out.metrics.size());
  EXPECT_EQ(out.topsis_scores.size(), out.metrics.size());
  EXPECT_EQ(out.wsm_scores.size(), out.metrics.size());
  EXPECT_EQ(out.analytical_scores.size(), out.metrics.size());
  EXPECT_EQ(out.ahp.weights.size(), kValidationCriteria);
  EXPECT_EQ(out.expert_consistency_ratios.size(), 7u);
  double wsum = 0.0;
  for (const double w : out.ahp.weights) {
    EXPECT_GE(w, 0.0);
    wsum += w;
  }
  EXPECT_NEAR(wsum, 1.0, 1e-9);
}

TEST_F(ValidationFixture, DeterministicGivenSeed) {
  const McdaValidator validator;
  stats::Rng a(3), b(3);
  const ValidationOutcome oa = validator.validate(
      builtin_scenario("s1_critical"), assessments_, effectiveness_, a);
  const ValidationOutcome ob = validator.validate(
      builtin_scenario("s1_critical"), assessments_, effectiveness_, b);
  EXPECT_EQ(oa.mcda_top, ob.mcda_top);
  EXPECT_DOUBLE_EQ(oa.kendall_agreement, ob.kendall_agreement);
}

TEST_F(ValidationFixture, LowNoisePanelAgreesWithAnalyticalSelection) {
  // With nearly-consistent experts anchored at the scenario weights, the
  // MCDA ranking must correlate strongly with the analytical one — this
  // is the paper's validation claim.
  ValidationConfig cfg;
  cfg.judgment_noise = 0.02;
  cfg.persona_spread = 0.02;
  const McdaValidator validator(cfg);
  stats::Rng rng(4);
  const ValidationOutcome out = validator.validate(
      builtin_scenario("s3_balanced"), assessments_, effectiveness_, rng);
  EXPECT_GT(out.kendall_agreement, 0.4);
  EXPECT_GE(out.top3_overlap, 1.0 / 3.0);
}

TEST_F(ValidationFixture, ConsistencyRatiosReportedAndPlausible) {
  ValidationConfig cfg;
  cfg.judgment_noise = 0.05;
  const McdaValidator validator(cfg);
  stats::Rng rng(5);
  const ValidationOutcome out = validator.validate(
      builtin_scenario("s2_budget"), assessments_, effectiveness_, rng);
  for (const double cr : out.expert_consistency_ratios) EXPECT_GE(cr, 0.0);
  // Aggregation smooths inconsistency: panel CR should be acceptable.
  EXPECT_TRUE(out.ahp.acceptable())
      << "panel CR = " << out.ahp.consistency_ratio;
}

TEST_F(ValidationFixture, NoisierExpertsAreLessConsistent) {
  ValidationConfig quiet_cfg;
  quiet_cfg.judgment_noise = 0.01;
  ValidationConfig noisy_cfg;
  noisy_cfg.judgment_noise = 0.6;
  stats::Rng r1(6), r2(6);
  const ValidationOutcome quiet =
      McdaValidator(quiet_cfg).validate(builtin_scenario("s3_balanced"),
                                        assessments_, effectiveness_, r1);
  const ValidationOutcome noisy =
      McdaValidator(noisy_cfg).validate(builtin_scenario("s3_balanced"),
                                        assessments_, effectiveness_, r2);
  const auto mean_cr = [](const std::vector<double>& crs) {
    double acc = 0.0;
    for (const double c : crs) acc += c;
    return acc / static_cast<double>(crs.size());
  };
  EXPECT_LT(mean_cr(quiet.expert_consistency_ratios),
            mean_cr(noisy.expert_consistency_ratios));
}

TEST_F(ValidationFixture, TopChoicesComeFromConsideredMetrics) {
  const McdaValidator validator;
  stats::Rng rng(7);
  const ValidationOutcome out = validator.validate(
      builtin_scenario("s4_rare"), assessments_, effectiveness_, rng);
  EXPECT_NE(std::find(out.metrics.begin(), out.metrics.end(), out.mcda_top),
            out.metrics.end());
  EXPECT_NE(std::find(out.metrics.begin(), out.metrics.end(),
                      out.analytical_top),
            out.metrics.end());
}

TEST_F(ValidationFixture, MethodsBroadlyAgreeOnScores) {
  // AHP-ratings and WSM use identical math here (sanity identity), and
  // TOPSIS should still correlate positively.
  const McdaValidator validator;
  stats::Rng rng(8);
  const ValidationOutcome out = validator.validate(
      builtin_scenario("s3_balanced"), assessments_, effectiveness_, rng);
  for (std::size_t i = 0; i < out.metrics.size(); ++i)
    EXPECT_NEAR(out.mcda_scores[i], out.wsm_scores[i], 1e-9);
  EXPECT_GT(stats::kendall_tau(out.mcda_scores, out.topsis_scores), 0.3);
}

TEST_F(ValidationFixture, MissingAssessmentThrows) {
  const McdaValidator validator;
  stats::Rng rng(9);
  const std::vector<MetricAssessment> empty;
  EXPECT_THROW(validator.validate(builtin_scenario("s3_balanced"), empty,
                                  effectiveness_, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace vdbench::core
