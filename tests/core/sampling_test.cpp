#include "core/sampling.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/hypothesis.h"

namespace vdbench::core {
namespace {

TEST(DetectorProfileTest, ValidationRejectsOutOfRange) {
  EXPECT_NO_THROW((DetectorProfile{0.5, 0.1}.validate()));
  EXPECT_THROW((DetectorProfile{-0.1, 0.1}.validate()), std::invalid_argument);
  EXPECT_THROW((DetectorProfile{0.5, 1.2}.validate()), std::invalid_argument);
}

TEST(DetectorProfileTest, Dominance) {
  const DetectorProfile base{0.7, 0.10};
  EXPECT_TRUE((DetectorProfile{0.8, 0.10}.dominates(base)));
  EXPECT_TRUE((DetectorProfile{0.7, 0.05}.dominates(base)));
  EXPECT_TRUE((DetectorProfile{0.8, 0.05}.dominates(base)));
  EXPECT_FALSE(base.dominates(base));
  EXPECT_FALSE((DetectorProfile{0.8, 0.20}.dominates(base)));
}

TEST(SampleConfusionTest, CountsAddUp) {
  stats::Rng rng(1);
  const DetectorProfile d{0.7, 0.1};
  const ConfusionMatrix cm = sample_confusion(d, 0.2, 1000, rng);
  EXPECT_EQ(cm.total(), 1000u);
  EXPECT_EQ(cm.actual_positives(), 200u);
  EXPECT_EQ(cm.actual_negatives(), 800u);
}

TEST(SampleConfusionTest, DeterministicGivenSeed) {
  const DetectorProfile d{0.6, 0.05};
  stats::Rng a(9), b(9);
  EXPECT_EQ(sample_confusion(d, 0.1, 500, a),
            sample_confusion(d, 0.1, 500, b));
}

TEST(SampleConfusionTest, ExtremeProfiles) {
  stats::Rng rng(2);
  const ConfusionMatrix perfect =
      sample_confusion(DetectorProfile{1.0, 0.0}, 0.1, 1000, rng);
  EXPECT_EQ(perfect.tp, 100u);
  EXPECT_EQ(perfect.fn, 0u);
  EXPECT_EQ(perfect.fp, 0u);
  const ConfusionMatrix blind =
      sample_confusion(DetectorProfile{0.0, 0.0}, 0.1, 1000, rng);
  EXPECT_EQ(blind.tp, 0u);
  EXPECT_EQ(blind.fn, 100u);
}

TEST(SampleConfusionTest, MeansMatchProfile) {
  stats::Rng rng(3);
  const DetectorProfile d{0.65, 0.12};
  double tp = 0.0, fp = 0.0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    const ConfusionMatrix cm = sample_confusion(d, 0.25, 1000, rng);
    tp += static_cast<double>(cm.tp);
    fp += static_cast<double>(cm.fp);
  }
  EXPECT_NEAR(tp / trials, 0.65 * 250.0, 2.0);
  EXPECT_NEAR(fp / trials, 0.12 * 750.0, 2.0);
}

TEST(ExpectedCostTest, HandComputed) {
  const DetectorProfile d{0.8, 0.1};
  // 0.2 miss rate on 10% prevalence at cost 5 + 10% fallout on 90% at 1.
  EXPECT_DOUBLE_EQ(expected_cost(d, 0.1, 5.0, 1.0),
                   0.1 * 0.2 * 5.0 + 0.9 * 0.1 * 1.0);
}

TEST(ExpectedCostTest, PerfectToolCostsNothing) {
  EXPECT_DOUBLE_EQ(expected_cost(DetectorProfile{1.0, 0.0}, 0.3, 7.0, 2.0),
                   0.0);
}

TEST(ExpectedCostTest, DominatingToolCostsLess) {
  const DetectorProfile better{0.9, 0.05};
  const DetectorProfile worse{0.7, 0.15};
  EXPECT_LT(expected_cost(better, 0.1, 5.0, 1.0),
            expected_cost(worse, 0.1, 5.0, 1.0));
}

TEST(ExpectedCostTest, RejectsNegativeCosts) {
  EXPECT_THROW(expected_cost(DetectorProfile{0.5, 0.1}, 0.1, -1.0, 1.0),
               std::invalid_argument);
}

TEST(BinormalAucTest, SymmetricOperatingPointGivesHalf) {
  EXPECT_NEAR(binormal_auc(0.5, 0.5), 0.5, 1e-9);
}

TEST(BinormalAucTest, BetterSeparationGivesHigherAuc) {
  EXPECT_GT(binormal_auc(0.9, 0.05), binormal_auc(0.7, 0.1));
  EXPECT_GT(binormal_auc(0.7, 0.1), binormal_auc(0.55, 0.45));
}

TEST(BinormalAucTest, DegenerateRatesAreNaN) {
  EXPECT_TRUE(std::isnan(binormal_auc(1.0, 0.1)));
  EXPECT_TRUE(std::isnan(binormal_auc(0.5, 0.0)));
}

TEST(BinormalAucTest, KnownValue) {
  // sens = Phi(1), fallout = Phi(-1): d' = 2, AUC = Phi(sqrt(2)).
  const double sens = stats::normal_cdf(1.0);
  const double fallout = stats::normal_cdf(-1.0);
  EXPECT_NEAR(binormal_auc(sens, fallout),
              stats::normal_cdf(2.0 / std::sqrt(2.0)), 1e-9);
}

TEST(MakeAbstractContextTest, DerivesOperationalFields) {
  const ConfusionMatrix cm{.tp = 40, .fp = 10, .tn = 930, .fn = 20};
  const EvalContext ctx = make_abstract_context(cm, 5.0, 2.0);
  EXPECT_DOUBLE_EQ(ctx.cost_fn, 5.0);
  EXPECT_DOUBLE_EQ(ctx.cost_fp, 2.0);
  EXPECT_DOUBLE_EQ(ctx.kloc, 50.0);  // 1000 sites / 20 per kLoC
  EXPECT_DOUBLE_EQ(ctx.analysis_seconds, 50.0);
  EXPECT_TRUE(std::isfinite(ctx.auc));
  EXPECT_GT(ctx.auc, 0.5);
}

TEST(MakeAbstractContextTest, CustomSettings) {
  const ConfusionMatrix cm{.tp = 10, .fp = 0, .tn = 80, .fn = 10};
  AbstractBenchmarkSettings settings;
  settings.sites_per_kloc = 10.0;
  settings.kloc_per_second = 2.0;
  const EvalContext ctx = make_abstract_context(cm, 1.0, 1.0, settings);
  EXPECT_DOUBLE_EQ(ctx.kloc, 10.0);
  EXPECT_DOUBLE_EQ(ctx.analysis_seconds, 5.0);
  EXPECT_THROW(
      make_abstract_context(cm, 1.0, 1.0, AbstractBenchmarkSettings{0.0, 1.0}),
      std::invalid_argument);
}

}  // namespace
}  // namespace vdbench::core
