#include "core/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "core/sampling.h"
#include "stats/rng.h"

namespace vdbench::core {
namespace {

// Canonical confusion matrix used by the hand-computed expectations:
// TP=40, FP=10, TN=930, FN=20 (N=1000, prevalence 6%).
EvalContext canonical_context() {
  EvalContext ctx;
  ctx.cm = ConfusionMatrix{.tp = 40, .fp = 10, .tn = 930, .fn = 20};
  ctx.cost_fn = 5.0;
  ctx.cost_fp = 1.0;
  ctx.analysis_seconds = 50.0;
  ctx.kloc = 25.0;
  ctx.auc = 0.91;
  return ctx;
}

double metric(MetricId id, const EvalContext& ctx = canonical_context()) {
  return compute_metric(id, ctx);
}

TEST(MetricValuesTest, Precision) {
  EXPECT_DOUBLE_EQ(metric(MetricId::kPrecision), 0.8);
}

TEST(MetricValuesTest, Recall) {
  EXPECT_DOUBLE_EQ(metric(MetricId::kRecall), 40.0 / 60.0);
}

TEST(MetricValuesTest, F1IsHarmonicMean) {
  const double p = 0.8, r = 40.0 / 60.0;
  EXPECT_DOUBLE_EQ(metric(MetricId::kFMeasure), 2.0 * p * r / (p + r));
}

TEST(MetricValuesTest, FBetaOrderingFollowsPrecisionRecallImbalance) {
  // Here precision > recall, so F0.5 (precision-weighted) > F1 > F2.
  EXPECT_GT(metric(MetricId::kFHalf), metric(MetricId::kFMeasure));
  EXPECT_GT(metric(MetricId::kFMeasure), metric(MetricId::kF2));
}

TEST(MetricValuesTest, Jaccard) {
  EXPECT_DOUBLE_EQ(metric(MetricId::kJaccard), 40.0 / 70.0);
}

TEST(MetricValuesTest, FowlkesMallows) {
  EXPECT_DOUBLE_EQ(metric(MetricId::kFowlkesMallows),
                   std::sqrt(0.8 * 40.0 / 60.0));
}

TEST(MetricValuesTest, SpecificityAndFpr) {
  EXPECT_DOUBLE_EQ(metric(MetricId::kSpecificity), 930.0 / 940.0);
  EXPECT_DOUBLE_EQ(metric(MetricId::kFpRate), 10.0 / 940.0);
}

TEST(MetricValuesTest, NpvAndRates) {
  EXPECT_DOUBLE_EQ(metric(MetricId::kNpv), 930.0 / 950.0);
  EXPECT_DOUBLE_EQ(metric(MetricId::kFnRate), 20.0 / 60.0);
  EXPECT_DOUBLE_EQ(metric(MetricId::kFdRate), 0.2);
  EXPECT_DOUBLE_EQ(metric(MetricId::kFoRate), 20.0 / 950.0);
}

TEST(MetricValuesTest, LikelihoodRatios) {
  const double tpr = 40.0 / 60.0, fpr = 10.0 / 940.0;
  EXPECT_DOUBLE_EQ(metric(MetricId::kLrPlus), tpr / fpr);
  EXPECT_DOUBLE_EQ(metric(MetricId::kLrMinus),
                   (20.0 / 60.0) / (930.0 / 940.0));
}

TEST(MetricValuesTest, DiagnosticOddsRatio) {
  EXPECT_DOUBLE_EQ(metric(MetricId::kDiagnosticOddsRatio),
                   (40.0 * 930.0) / (10.0 * 20.0));
}

TEST(MetricValuesTest, PrevalenceThreshold) {
  const double tpr = 40.0 / 60.0, fpr = 10.0 / 940.0;
  EXPECT_DOUBLE_EQ(metric(MetricId::kPrevalenceThreshold),
                   std::sqrt(fpr) / (std::sqrt(tpr) + std::sqrt(fpr)));
}

TEST(MetricValuesTest, AccuracyAndErrorRate) {
  EXPECT_DOUBLE_EQ(metric(MetricId::kAccuracy), 0.97);
  EXPECT_DOUBLE_EQ(metric(MetricId::kErrorRate), 0.03);
  EXPECT_DOUBLE_EQ(
      metric(MetricId::kAccuracy) + metric(MetricId::kErrorRate), 1.0);
}

TEST(MetricValuesTest, BalancedAccuracyAndGMean) {
  const double tpr = 40.0 / 60.0, tnr = 930.0 / 940.0;
  EXPECT_DOUBLE_EQ(metric(MetricId::kBalancedAccuracy), (tpr + tnr) / 2.0);
  EXPECT_DOUBLE_EQ(metric(MetricId::kGMean), std::sqrt(tpr * tnr));
}

TEST(MetricValuesTest, MccHandComputed) {
  const double num = 40.0 * 930.0 - 10.0 * 20.0;
  const double den = std::sqrt(50.0 * 60.0 * 940.0 * 950.0);
  EXPECT_DOUBLE_EQ(metric(MetricId::kMcc), num / den);
}

TEST(MetricValuesTest, InformednessAndMarkedness) {
  EXPECT_DOUBLE_EQ(metric(MetricId::kInformedness),
                   40.0 / 60.0 + 930.0 / 940.0 - 1.0);
  EXPECT_DOUBLE_EQ(metric(MetricId::kMarkedness),
                   0.8 + 930.0 / 950.0 - 1.0);
}

TEST(MetricValuesTest, MccIsGeometricMeanOfInformednessMarkedness) {
  // For a positive association, MCC = sqrt(J * markedness).
  const double j = metric(MetricId::kInformedness);
  const double mk = metric(MetricId::kMarkedness);
  EXPECT_NEAR(metric(MetricId::kMcc), std::sqrt(j * mk), 1e-12);
}

TEST(MetricValuesTest, KappaHandComputed) {
  const double po = 0.97;
  const double pe = (50.0 / 1000.0) * (60.0 / 1000.0) +
                    (950.0 / 1000.0) * (940.0 / 1000.0);
  EXPECT_DOUBLE_EQ(metric(MetricId::kKappa), (po - pe) / (1.0 - pe));
}

TEST(MetricValuesTest, AucPassesThroughContext) {
  EXPECT_DOUBLE_EQ(metric(MetricId::kAuc), 0.91);
}

TEST(MetricValuesTest, NormalizedExpectedCost) {
  const double cost = 1.0 * 10.0 + 5.0 * 20.0;
  const double worst = 1.0 * 940.0 + 5.0 * 60.0;
  EXPECT_DOUBLE_EQ(metric(MetricId::kNormalizedExpectedCost), cost / worst);
}

TEST(MetricValuesTest, WeightedBalancedAccuracy) {
  const double w = 5.0 / 6.0;
  EXPECT_DOUBLE_EQ(metric(MetricId::kWeightedBalancedAccuracy),
                   w * (40.0 / 60.0) + (1.0 - w) * (930.0 / 940.0));
}

TEST(MetricValuesTest, OperationalMetrics) {
  EXPECT_DOUBLE_EQ(metric(MetricId::kPrevalence), 0.06);
  EXPECT_DOUBLE_EQ(metric(MetricId::kAlarmDensity), 50.0 / 25.0);
  EXPECT_DOUBLE_EQ(metric(MetricId::kAnalysisThroughput), 0.5);
  EXPECT_DOUBLE_EQ(metric(MetricId::kTimePerDetection), 50.0 / 40.0);
}

TEST(MetricValuesTest, OperationalMetricsUndefinedWithoutMeasurements) {
  EvalContext ctx = canonical_context();
  ctx.analysis_seconds = std::numeric_limits<double>::quiet_NaN();
  ctx.kloc = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(std::isnan(compute_metric(MetricId::kAlarmDensity, ctx)));
  EXPECT_TRUE(std::isnan(compute_metric(MetricId::kAnalysisThroughput, ctx)));
  EXPECT_TRUE(std::isnan(compute_metric(MetricId::kTimePerDetection, ctx)));
}

TEST(MetricEdgeCasesTest, PerfectClassifier) {
  EvalContext ctx;
  ctx.cm = ConfusionMatrix{.tp = 100, .fp = 0, .tn = 900, .fn = 0};
  EXPECT_DOUBLE_EQ(compute_metric(MetricId::kPrecision, ctx), 1.0);
  EXPECT_DOUBLE_EQ(compute_metric(MetricId::kRecall, ctx), 1.0);
  EXPECT_DOUBLE_EQ(compute_metric(MetricId::kFMeasure, ctx), 1.0);
  EXPECT_DOUBLE_EQ(compute_metric(MetricId::kMcc, ctx), 1.0);
  EXPECT_DOUBLE_EQ(compute_metric(MetricId::kInformedness, ctx), 1.0);
  EXPECT_DOUBLE_EQ(compute_metric(MetricId::kKappa, ctx), 1.0);
  EXPECT_DOUBLE_EQ(compute_metric(MetricId::kNormalizedExpectedCost, ctx),
                   0.0);
}

TEST(MetricEdgeCasesTest, WorstClassifier) {
  EvalContext ctx;
  ctx.cm = ConfusionMatrix{.tp = 0, .fp = 900, .tn = 0, .fn = 100};
  EXPECT_DOUBLE_EQ(compute_metric(MetricId::kRecall, ctx), 0.0);
  EXPECT_DOUBLE_EQ(compute_metric(MetricId::kMcc, ctx), -1.0);
  EXPECT_DOUBLE_EQ(compute_metric(MetricId::kInformedness, ctx), -1.0);
  EXPECT_DOUBLE_EQ(compute_metric(MetricId::kNormalizedExpectedCost, ctx),
                   1.0);
}

TEST(MetricEdgeCasesTest, SilentToolHasZeroF1NotNaN) {
  // A tool reporting nothing: precision undefined but F handled as 0 only
  // when both P and R are zero; here precision is NaN so F is NaN.
  EvalContext ctx;
  ctx.cm = ConfusionMatrix{.tp = 0, .fp = 0, .tn = 90, .fn = 10};
  EXPECT_TRUE(std::isnan(compute_metric(MetricId::kPrecision, ctx)));
  EXPECT_TRUE(std::isnan(compute_metric(MetricId::kFMeasure, ctx)));
  EXPECT_DOUBLE_EQ(compute_metric(MetricId::kRecall, ctx), 0.0);
}

TEST(MetricEdgeCasesTest, AllWrongPredictionsGiveZeroF1) {
  EvalContext ctx;
  ctx.cm = ConfusionMatrix{.tp = 0, .fp = 10, .tn = 80, .fn = 10};
  EXPECT_DOUBLE_EQ(compute_metric(MetricId::kFMeasure, ctx), 0.0);
}

TEST(MetricEdgeCasesTest, LrPlusInfiniteForPerfectSpecificity) {
  EvalContext ctx;
  ctx.cm = ConfusionMatrix{.tp = 50, .fp = 0, .tn = 900, .fn = 50};
  EXPECT_TRUE(std::isinf(compute_metric(MetricId::kLrPlus, ctx)));
}

TEST(MetricEdgeCasesTest, KappaUndefinedWhenChanceAgreementIsOne) {
  EvalContext ctx;
  ctx.cm = ConfusionMatrix{.tp = 0, .fp = 0, .tn = 100, .fn = 0};
  EXPECT_TRUE(std::isnan(compute_metric(MetricId::kKappa, ctx)));
}

TEST(MetricRegistryTest, CatalogueHasExpectedSize) {
  EXPECT_EQ(all_metrics().size(), kMetricCount);
  EXPECT_EQ(all_metrics().size(), 32u);
}

TEST(MetricRegistryTest, InfoIdsMatchEnumOrder) {
  const auto metrics = all_metrics();
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(metrics[i]), i);
    EXPECT_EQ(metric_info(metrics[i]).id, metrics[i]);
  }
}

TEST(MetricRegistryTest, KeysAreUniqueAndResolvable) {
  std::set<std::string> keys;
  for (const MetricId id : all_metrics()) {
    const std::string key(metric_info(id).key);
    EXPECT_TRUE(keys.insert(key).second) << "duplicate key " << key;
    const auto resolved = metric_from_key(key);
    ASSERT_TRUE(resolved.has_value());
    EXPECT_EQ(*resolved, id);
  }
  EXPECT_FALSE(metric_from_key("no_such_metric").has_value());
}

TEST(MetricRegistryTest, RankingMetricsExcludeDescriptive) {
  const auto ranking = ranking_metrics();
  EXPECT_EQ(ranking.size(), kMetricCount - 2);  // prevalence, alarm density
  for (const MetricId id : ranking)
    EXPECT_NE(metric_info(id).direction, Direction::kNone);
}

TEST(MetricRegistryTest, CostAwareFlagMatchesCategory) {
  for (const MetricId id : all_metrics()) {
    const MetricInfo& info = metric_info(id);
    EXPECT_EQ(info.cost_aware,
              info.category == MetricCategory::kCostBased)
        << info.key;
  }
}

TEST(MetricRegistryTest, UtilityRespectsDirection) {
  EXPECT_DOUBLE_EQ(metric_utility(MetricId::kPrecision, 0.7), 0.7);
  EXPECT_DOUBLE_EQ(metric_utility(MetricId::kFpRate, 0.7), -0.7);
  EXPECT_TRUE(std::isnan(metric_utility(MetricId::kPrevalence, 0.7)));
  EXPECT_TRUE(std::isnan(metric_utility(MetricId::kPrecision,
                                        std::nan(""))));
}

TEST(MetricRegistryTest, ComputeAllMatchesIndividual) {
  const EvalContext ctx = canonical_context();
  const std::vector<double> all = compute_all_metrics(ctx);
  ASSERT_EQ(all.size(), kMetricCount);
  for (std::size_t i = 0; i < all.size(); ++i) {
    const double single = compute_metric(all_metrics()[i], ctx);
    if (std::isnan(single))
      EXPECT_TRUE(std::isnan(all[i]));
    else
      EXPECT_DOUBLE_EQ(all[i], single);
  }
}

TEST(MetricRegistryTest, NamesAreDisplayable) {
  for (const MetricId id : all_metrics()) {
    const MetricInfo& info = metric_info(id);
    EXPECT_FALSE(info.name.empty());
    EXPECT_FALSE(info.formula.empty());
    EXPECT_FALSE(category_name(info.category).empty());
    EXPECT_FALSE(direction_name(info.direction).empty());
  }
}

// ---------------------------------------------------------------------------
// Parameterized property sweeps over the whole catalogue.

class AllMetricsTest : public ::testing::TestWithParam<MetricId> {};

INSTANTIATE_TEST_SUITE_P(
    Catalogue, AllMetricsTest, ::testing::ValuesIn(all_metrics().begin(),
                                                   all_metrics().end()),
    [](const ::testing::TestParamInfo<MetricId>& info) {
      return std::string(metric_info(info.param).key);
    });

TEST_P(AllMetricsTest, ValuesStayInDeclaredRangeOnRandomBenchmarks) {
  const MetricInfo& info = metric_info(GetParam());
  stats::Rng rng(static_cast<std::uint64_t>(GetParam()) + 777);
  for (int trial = 0; trial < 200; ++trial) {
    DetectorProfile d{rng.uniform(), rng.uniform()};
    const ConfusionMatrix cm =
        sample_confusion(d, rng.uniform(0.0, 0.6), 200, rng);
    const EvalContext ctx = make_abstract_context(cm, 5.0, 1.0);
    const double v = compute_metric(GetParam(), ctx);
    if (std::isnan(v)) continue;  // undefined is allowed
    EXPECT_GE(v, info.range_lo) << info.key << " on " << cm.to_string();
    EXPECT_LE(v, info.range_hi) << info.key << " on " << cm.to_string();
  }
}

TEST_P(AllMetricsTest, DeclaredPrevalenceInvarianceHoldsAsymptotically) {
  const MetricInfo& info = metric_info(GetParam());
  if (info.direction == Direction::kNone) GTEST_SKIP();
  // Operational time/throughput metrics depend on workload size, not
  // prevalence, but the abstract context derives time from total items
  // only; prevalence invariance still applies.
  const double sens = 0.7, fallout = 0.08;
  const ConfusionMatrix lo_cm =
      expected_confusion(sens, fallout, 0.02, 4'000'000);
  const ConfusionMatrix hi_cm =
      expected_confusion(sens, fallout, 0.40, 4'000'000);
  const double lo = compute_metric(GetParam(),
                                   make_abstract_context(lo_cm, 5.0, 1.0));
  const double hi = compute_metric(GetParam(),
                                   make_abstract_context(hi_cm, 5.0, 1.0));
  if (!std::isfinite(lo) || !std::isfinite(hi)) GTEST_SKIP();
  const double scale = std::max({std::abs(lo), std::abs(hi), 1e-9});
  const double drift = std::abs(hi - lo) / scale;
  if (info.prevalence_invariant) {
    EXPECT_LT(drift, 0.02) << info.key << " lo=" << lo << " hi=" << hi;
  } else {
    EXPECT_GT(drift, 0.02) << info.key << " lo=" << lo << " hi=" << hi;
  }
}

TEST_P(AllMetricsTest, BetterToolNeverScoresWorseAsymptotically) {
  const MetricInfo& info = metric_info(GetParam());
  if (info.direction == Direction::kNone) GTEST_SKIP();
  // Time-based operational metrics are quality-blind by design; the
  // abstract context gives both tools identical time, so skip direction
  // reasoning there.
  const double prev = 0.1;
  const auto utility = [&](double sens, double fallout) {
    const ConfusionMatrix cm =
        expected_confusion(sens, fallout, prev, 2'000'000);
    return metric_utility(GetParam(),
                          compute_metric(GetParam(),
                                         make_abstract_context(cm, 5.0, 1.0)));
  };
  const double worse = utility(0.6, 0.10);
  const double better_sens = utility(0.75, 0.10);
  const double better_fallout = utility(0.6, 0.05);
  if (std::isfinite(worse) && std::isfinite(better_sens))
    EXPECT_GE(better_sens, worse) << info.key;
  if (std::isfinite(worse) && std::isfinite(better_fallout))
    EXPECT_GE(better_fallout, worse) << info.key;
}

}  // namespace
}  // namespace vdbench::core
