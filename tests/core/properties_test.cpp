#include "core/properties.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vdbench::core {
namespace {

// A lighter configuration than the default keeps the suite fast while
// preserving the qualitative ordering the assertions check.
AssessmentConfig fast_config() {
  AssessmentConfig cfg;
  cfg.trials = 120;
  cfg.benchmark_items = 400;
  cfg.asymptotic_items = 200'000;
  return cfg;
}

class PropertyAssessorTest : public ::testing::Test {
 protected:
  PropertyAssessor assessor_{fast_config()};
};

TEST(PropertyEnumTest, CanonicalOrderAndNames) {
  const auto props = all_properties();
  ASSERT_EQ(props.size(), kPropertyCount);
  EXPECT_EQ(props.front(), Property::kDiscrimination);
  EXPECT_EQ(props.back(), Property::kCollectionEase);
  for (const Property p : props) {
    EXPECT_FALSE(property_name(p).empty());
    EXPECT_FALSE(property_description(p).empty());
  }
}

TEST(AssessmentConfigTest, ValidationCatchesBadFields) {
  AssessmentConfig cfg;
  cfg.base_prevalence = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = AssessmentConfig{};
  cfg.trials = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = AssessmentConfig{};
  cfg.prevalence_grid = {1.5};
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = AssessmentConfig{};
  cfg.quality_gaps.clear();
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  EXPECT_NO_THROW(AssessmentConfig{}.validate());
}

TEST(MetricAssessmentTest, WeightedScoreIsConvexCombination) {
  MetricAssessment a;
  a.metric = MetricId::kRecall;
  a.scores = {1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0};
  std::array<double, kPropertyCount> uniform{};
  uniform.fill(1.0);
  EXPECT_NEAR(a.weighted_score(uniform), 5.0 / 9.0, 1e-12);
  std::array<double, kPropertyCount> first_only{};
  first_only[0] = 2.0;
  EXPECT_DOUBLE_EQ(a.weighted_score(first_only), 1.0);
}

TEST(MetricAssessmentTest, WeightedScoreRejectsBadWeights) {
  MetricAssessment a;
  const std::vector<double> wrong_size(3, 1.0);
  EXPECT_THROW(a.weighted_score(wrong_size), std::invalid_argument);
  std::array<double, kPropertyCount> zeros{};
  EXPECT_THROW(a.weighted_score(zeros), std::invalid_argument);
  std::array<double, kPropertyCount> negative{};
  negative.fill(1.0);
  negative[2] = -1.0;
  EXPECT_THROW(a.weighted_score(negative), std::invalid_argument);
}

TEST_F(PropertyAssessorTest, ScoresAreInUnitInterval) {
  stats::Rng rng(100);
  for (const MetricId id :
       {MetricId::kPrecision, MetricId::kMcc, MetricId::kLrPlus,
        MetricId::kAnalysisThroughput}) {
    const MetricAssessment a = assessor_.assess(id, rng);
    for (const double s : a.scores) {
      EXPECT_GE(s, 0.0) << metric_info(id).key;
      EXPECT_LE(s, 1.0) << metric_info(id).key;
    }
  }
}

TEST_F(PropertyAssessorTest, DeterministicGivenSeed) {
  stats::Rng a(7), b(7);
  const MetricAssessment ma = assessor_.assess(MetricId::kFMeasure, a);
  const MetricAssessment mb = assessor_.assess(MetricId::kFMeasure, b);
  EXPECT_EQ(ma.scores, mb.scores);
}

TEST_F(PropertyAssessorTest, RecallIsPrevalenceRobustAccuracyIsNot) {
  stats::Rng rng(1);
  const double recall_rob =
      assessor_.assess(MetricId::kRecall, rng)
          .score(Property::kPrevalenceRobustness);
  const double precision_rob =
      assessor_.assess(MetricId::kPrecision, rng)
          .score(Property::kPrevalenceRobustness);
  EXPECT_GT(recall_rob, 0.95);
  EXPECT_LT(precision_rob, 0.7);
}

TEST_F(PropertyAssessorTest, InformednessMoreRobustThanMcc) {
  stats::Rng rng(2);
  const double j = assessor_.assess(MetricId::kInformedness, rng)
                       .score(Property::kPrevalenceRobustness);
  const double mcc = assessor_.assess(MetricId::kMcc, rng)
                         .score(Property::kPrevalenceRobustness);
  EXPECT_GT(j, mcc);
}

TEST_F(PropertyAssessorTest, MonotonicityHoldsForWellBehavedMetrics) {
  stats::Rng rng(3);
  for (const MetricId id : {MetricId::kRecall, MetricId::kMcc,
                            MetricId::kInformedness, MetricId::kFMeasure}) {
    EXPECT_DOUBLE_EQ(assessor_.assess(id, rng).score(Property::kMonotonicity),
                     1.0)
        << metric_info(id).key;
  }
}

TEST_F(PropertyAssessorTest, DiscriminationAboveChanceForQualityMetrics) {
  stats::Rng rng(4);
  for (const MetricId id : {MetricId::kMcc, MetricId::kFMeasure,
                            MetricId::kBalancedAccuracy}) {
    EXPECT_GT(assessor_.assess(id, rng).score(Property::kDiscrimination),
              0.6)
        << metric_info(id).key;
  }
}

TEST_F(PropertyAssessorTest, ThroughputCannotDiscriminateQuality) {
  // The abstract context gives every tool the same analysis time, so
  // throughput must sit at chance level.
  stats::Rng rng(5);
  const double d = assessor_.assess(MetricId::kAnalysisThroughput, rng)
                       .score(Property::kDiscrimination);
  EXPECT_NEAR(d, 0.5, 0.02);
}

TEST_F(PropertyAssessorTest, DescriptiveMetricsScoreZeroOnQualityAxes) {
  stats::Rng rng(6);
  const MetricAssessment a = assessor_.assess(MetricId::kPrevalence, rng);
  EXPECT_DOUBLE_EQ(a.score(Property::kDiscrimination), 0.0);
  EXPECT_DOUBLE_EQ(a.score(Property::kMonotonicity), 0.0);
  EXPECT_DOUBLE_EQ(a.score(Property::kCostAwareness), 0.0);
}

TEST_F(PropertyAssessorTest, DefinednessPenalizesPrecisionStyleMetrics) {
  // On tiny benchmarks a silent tool leaves precision undefined while
  // recall stays defined (positives are guaranteed by prevalence > 0 in
  // most draws, but not all; recall should still beat precision).
  stats::Rng rng(7);
  const double recall_def =
      assessor_.assess(MetricId::kRecall, rng).score(Property::kDefinedness);
  const double dor_def = assessor_.assess(MetricId::kDiagnosticOddsRatio, rng)
                             .score(Property::kDefinedness);
  EXPECT_GT(recall_def, dor_def);
}

TEST_F(PropertyAssessorTest, NormalizationReflectsBoundedness) {
  stats::Rng rng(8);
  EXPECT_DOUBLE_EQ(
      assessor_.assess(MetricId::kPrecision, rng).score(Property::kNormalization),
      1.0);
  EXPECT_DOUBLE_EQ(
      assessor_.assess(MetricId::kLrPlus, rng).score(Property::kNormalization),
      0.0);
}

TEST_F(PropertyAssessorTest, OnlyCostMetricsAreCostAware) {
  stats::Rng rng(9);
  EXPECT_DOUBLE_EQ(assessor_.assess(MetricId::kNormalizedExpectedCost, rng)
                       .score(Property::kCostAwareness),
                   1.0);
  EXPECT_DOUBLE_EQ(assessor_.assess(MetricId::kWeightedBalancedAccuracy, rng)
                       .score(Property::kCostAwareness),
                   1.0);
  EXPECT_DOUBLE_EQ(assessor_.assess(MetricId::kFMeasure, rng)
                       .score(Property::kCostAwareness),
                   0.0);
}

TEST_F(PropertyAssessorTest, AssessAllCoversCatalogue) {
  stats::Rng rng(10);
  const std::vector<MetricAssessment> all = assessor_.assess_all(rng);
  ASSERT_EQ(all.size(), kMetricCount);
  for (std::size_t i = 0; i < all.size(); ++i)
    EXPECT_EQ(all[i].metric, all_metrics()[i]);
}

TEST_F(PropertyAssessorTest, StabilityFavorsLargeSampleMetrs) {
  // Same metric, larger benchmarks -> higher stability score.
  AssessmentConfig small = fast_config();
  small.benchmark_items = 100;
  AssessmentConfig large = fast_config();
  large.benchmark_items = 4000;
  stats::Rng r1(11), r2(11);
  const double s_small = PropertyAssessor(small)
                             .assess(MetricId::kFMeasure, r1)
                             .score(Property::kStability);
  const double s_large = PropertyAssessor(large)
                             .assess(MetricId::kFMeasure, r2)
                             .score(Property::kStability);
  EXPECT_GT(s_large, s_small);
}

}  // namespace
}  // namespace vdbench::core
