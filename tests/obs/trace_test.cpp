// Tests for the tracing + profiling layer: event capture and JSON schema,
// multi-thread tid assignment, JSON escaping, the profiler summary path,
// and — the layer's load-bearing promise — that a disarmed span site
// records nothing and allocates nothing.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/profile.h"
#include "obs/registry.h"
#include "report/json_reader.h"

// Global-allocation counter for the zero-overhead assertion. Sanitizer
// builds keep the default operator new (ASan/TSan interpose their own and
// must see every call), so the allocation half of the test is compiled out
// there; the trace.events half still runs.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define VDBENCH_COUNT_ALLOCS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define VDBENCH_COUNT_ALLOCS 0
#else
#define VDBENCH_COUNT_ALLOCS 1
#endif
#else
#define VDBENCH_COUNT_ALLOCS 1
#endif

#if VDBENCH_COUNT_ALLOCS
// GCC pairs inlined default-new call sites with the replacement delete and
// warns; the replacement pair below is malloc/free-consistent throughout.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace {
std::atomic<std::uint64_t> g_allocation_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif

namespace vdbench::obs {
namespace {

TEST(SpanOverheadTest, DisarmedSpanSiteRecordsNothingAndAllocatesNothing) {
  ASSERT_FALSE(Tracer::global().active());
  ASSERT_FALSE(Profiler::global().armed());
  const std::uint64_t events_before =
      Registry::global().value(Counter::kTraceEvents);
#if VDBENCH_COUNT_ALLOCS
  const std::uint64_t allocs_before =
      g_allocation_count.load(std::memory_order_relaxed);
#endif
  for (int i = 0; i < 1000; ++i) {
    const Span span("executor.task");
    instant("fault.fire", "cache.read=io_error@probe");
  }
#if VDBENCH_COUNT_ALLOCS
  EXPECT_EQ(g_allocation_count.load(std::memory_order_relaxed),
            allocs_before)
      << "disarmed span sites must not allocate";
#endif
  EXPECT_EQ(Registry::global().value(Counter::kTraceEvents), events_before)
      << "disarmed span sites must not record events";
}

TEST(TracerTest, CapturesBalancedSpansAndInstants) {
  Tracer& tracer = Tracer::global();
  tracer.start();
  {
    const Span outer("driver.experiment", "t1");
    const Span inner("executor.task");
    instant("fault.fire", "executor.task=throw@5");
  }
  tracer.stop();
  EXPECT_EQ(tracer.event_count(), 5u);  // 2 B + 2 E + 1 instant

  const std::string json = tracer.render_json();
  const std::optional<report::JsonValue> doc = report::parse_json(json);
  ASSERT_TRUE(doc.has_value()) << json;
  const report::JsonValue* events = doc->member("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_NE(events->as_array(), nullptr);
  ASSERT_EQ(events->as_array()->size(), 5u);

  int depth = 0;
  std::set<std::string> names;
  for (const report::JsonValue& event : *events->as_array()) {
    const report::JsonValue* ph = event.member("ph");
    const report::JsonValue* name = event.member("name");
    const report::JsonValue* ts = event.member("ts");
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(name, nullptr);
    ASSERT_NE(ts, nullptr);
    ASSERT_NE(ph->as_string(), nullptr);
    ASSERT_NE(name->as_string(), nullptr);
    ASSERT_TRUE(ts->as_number().has_value());
    EXPECT_GE(*ts->as_number(), 0.0);
    names.insert(*name->as_string());
    const std::string& phase = *ph->as_string();
    if (phase == "B") ++depth;
    if (phase == "E") --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_TRUE(names.count("driver.experiment"));
  EXPECT_TRUE(names.count("executor.task"));
  EXPECT_TRUE(names.count("fault.fire"));

  // The instant carries the Perfetto thread scope marker.
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
}

TEST(TracerTest, ThreadsGetDistinctTidsAndStartIsFresh) {
  Tracer& tracer = Tracer::global();
  tracer.start();
  { const Span span("executor.task"); }
  std::thread worker([] { const Span span("executor.task"); });
  worker.join();
  tracer.stop();
  ASSERT_EQ(tracer.event_count(), 4u);

  const std::optional<report::JsonValue> doc =
      report::parse_json(tracer.render_json());
  ASSERT_TRUE(doc.has_value());
  std::set<double> tids;
  for (const report::JsonValue& event :
       *doc->member("traceEvents")->as_array()) {
    ASSERT_TRUE(event.member("tid")->as_number().has_value());
    tids.insert(*event.member("tid")->as_number());
  }
  EXPECT_EQ(tids.size(), 2u) << "each thread gets its own tid";

  // start() resets the buffers: a fresh session begins empty.
  tracer.start();
  tracer.stop();
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(TracerTest, EscapesSpanDetailsIntoValidJson) {
  Tracer& tracer = Tracer::global();
  tracer.start();
  { const Span span("driver.experiment", "quote\" backslash\\ newline\n"); }
  tracer.stop();
  const std::string json = tracer.render_json();
  const std::optional<report::JsonValue> doc = report::parse_json(json);
  ASSERT_TRUE(doc.has_value()) << json;
  const auto& events = *doc->member("traceEvents")->as_array();
  ASSERT_FALSE(events.empty());
  const report::JsonValue* args = events.front().member("args");
  ASSERT_NE(args, nullptr);
  const report::JsonValue* detail = args->member("detail");
  ASSERT_NE(detail, nullptr);
  ASSERT_NE(detail->as_string(), nullptr);
  EXPECT_EQ(*detail->as_string(), "quote\" backslash\\ newline\n");
}

TEST(TracerTest, TraceEventsCounterTracksRecordedEvents) {
  const std::uint64_t before =
      Registry::global().value(Counter::kTraceEvents);
  Tracer& tracer = Tracer::global();
  tracer.start();
  { const Span span("executor.task"); }
  instant("executor.cancel");
  tracer.stop();
  EXPECT_EQ(Registry::global().value(Counter::kTraceEvents), before + 3);
}

TEST(ProfilerTest, CollectsPerSpanSummariesWhileArmed) {
  Profiler& profiler = Profiler::global();
  profiler.clear();
  profiler.arm();
  for (int i = 0; i < 10; ++i) {
    // vdlint:allow(vdl-span-name)
    const Span span("profiler.unit.span");
  }
  profiler.disarm();
  ASSERT_FALSE(profiler.armed());

  const std::vector<Profiler::Summary> summaries = profiler.summaries();
  const auto it = std::find_if(
      summaries.begin(), summaries.end(),
      [](const Profiler::Summary& s) { return s.name == "profiler.unit.span"; });
  ASSERT_NE(it, summaries.end());
  EXPECT_EQ(it->count, 10u);
  EXPECT_GE(it->p95_us, it->p50_us);
  EXPECT_GE(it->max_us, it->p95_us);
  EXPECT_GE(it->total_us, it->max_us);

  // Disarmed spans no longer report.
  // vdlint:allow(vdl-span-name)
  { const Span span("profiler.unit.span"); }
  const std::vector<Profiler::Summary> after = profiler.summaries();
  const auto it2 = std::find_if(
      after.begin(), after.end(),
      [](const Profiler::Summary& s) { return s.name == "profiler.unit.span"; });
  ASSERT_NE(it2, after.end());
  EXPECT_EQ(it2->count, 10u);
  profiler.clear();
}

}  // namespace
}  // namespace vdbench::obs
