// Unit tests for the runtime-metrics registry: counter/gauge/histogram
// semantics, snapshot deltas, and the naming contract the exporters
// (manifest telemetry, trace args) rely on.
#include "obs/registry.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace vdbench::obs {
namespace {

TEST(RegistryTest, CountersAccumulateAndSnapshotDeltas) {
  Registry registry;
  EXPECT_EQ(registry.value(Counter::kCacheHits), 0u);
  registry.add(Counter::kCacheHits);
  registry.add(Counter::kCacheHits, 4);
  registry.add(Counter::kBytesWritten, 1000);
  EXPECT_EQ(registry.value(Counter::kCacheHits), 5u);
  EXPECT_EQ(registry.value(Counter::kBytesWritten), 1000u);

  const CounterSnapshot before = registry.snapshot();
  registry.add(Counter::kCacheHits, 2);
  registry.add(Counter::kRetries, 3);
  const CounterSnapshot delta = registry.snapshot().since(before);
  EXPECT_EQ(delta[Counter::kCacheHits], 2u);
  EXPECT_EQ(delta[Counter::kRetries], 3u);
  EXPECT_EQ(delta[Counter::kBytesWritten], 0u);
}

TEST(RegistryTest, GaugesAreLastWriteWins) {
  Registry registry;
  registry.set(Gauge::kThreads, 8);
  registry.set(Gauge::kThreads, 3);
  EXPECT_EQ(registry.value(Gauge::kThreads), 3u);
  EXPECT_EQ(registry.value(Gauge::kCacheEntries), 0u);
}

TEST(RegistryTest, HistogramUsesLog2Buckets) {
  Registry registry;
  registry.record(Histogram::kPayloadBytes, 0);     // bucket 0
  registry.record(Histogram::kPayloadBytes, 1);     // bucket 1
  registry.record(Histogram::kPayloadBytes, 2);     // bucket 2: [2, 4)
  registry.record(Histogram::kPayloadBytes, 3);     // bucket 2
  registry.record(Histogram::kPayloadBytes, 1024);  // bucket 11: [1024, 2048)
  EXPECT_EQ(registry.bucket(Histogram::kPayloadBytes, 0), 1u);
  EXPECT_EQ(registry.bucket(Histogram::kPayloadBytes, 1), 1u);
  EXPECT_EQ(registry.bucket(Histogram::kPayloadBytes, 2), 2u);
  EXPECT_EQ(registry.bucket(Histogram::kPayloadBytes, 11), 1u);
  EXPECT_EQ(registry.bucket(Histogram::kTaskBatch, 2), 0u);
}

TEST(RegistryTest, ResetZeroesEveryInstrument) {
  Registry registry;
  registry.add(Counter::kFaultFires, 9);
  registry.set(Gauge::kCacheBytes, 77);
  registry.record(Histogram::kTaskBatch, 16);
  registry.reset();
  EXPECT_EQ(registry.value(Counter::kFaultFires), 0u);
  EXPECT_EQ(registry.value(Gauge::kCacheBytes), 0u);
  EXPECT_EQ(registry.bucket(Histogram::kTaskBatch, 5), 0u);
}

TEST(RegistryTest, InstrumentNamesAreUniqueDottedAndStable) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const std::string_view name = counter_name(static_cast<Counter>(i));
    ASSERT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(std::string(name)).second)
        << "duplicate counter name " << name;
  }
  for (std::size_t i = 0; i < kGaugeCount; ++i) {
    const std::string_view name = gauge_name(static_cast<Gauge>(i));
    ASSERT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(std::string(name)).second)
        << "duplicate gauge name " << name;
  }
  for (std::size_t i = 0; i < kHistogramCount; ++i) {
    const std::string_view name = histogram_name(static_cast<Histogram>(i));
    ASSERT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(std::string(name)).second)
        << "duplicate histogram name " << name;
  }
  // Spot-check the spelling the manifest telemetry block exports.
  EXPECT_EQ(counter_name(Counter::kCacheHits), "cache.hits");
  EXPECT_EQ(counter_name(Counter::kTraceEvents), "trace.events");
  EXPECT_EQ(gauge_name(Gauge::kThreads), "threads");
  EXPECT_EQ(histogram_name(Histogram::kPayloadBytes), "payload.bytes");
}

TEST(RegistryTest, GlobalShorthandHitsTheGlobalRegistry) {
  const std::uint64_t before =
      Registry::global().value(Counter::kManifestWrites);
  count(Counter::kManifestWrites, 2);
  EXPECT_EQ(Registry::global().value(Counter::kManifestWrites), before + 2);
}

}  // namespace
}  // namespace vdbench::obs
