// Streaming-pipeline semantics tests: chunking/queue-depth invariance,
// prefix stability (the property that makes one checkpointed pass equal a
// whole workload-size sweep), checkpoint handling, record→replay identity,
// replay/spec mismatch rejection, cooperative cancellation, and typed
// propagation of stream.produce / stream.consume injected faults. Lives in
// the parallel test binary so the producer/consumer pair runs under tsan.
#include "stream/pipeline.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <thread>
#include <vector>

#include "fault/injector.h"
#include "stats/parallel.h"

namespace vdbench::stream {
namespace {

namespace fs = std::filesystem;

StreamSpec small_spec(std::uint64_t total_sites = 20'000) {
  StreamSpec spec;
  spec.total_sites = total_sites;
  spec.tool = vdsim::make_archetype_profile(
      vdsim::ToolArchetype::kStaticAnalyzer, 0.6, "unit-tool");
  spec.seed = 20150622;
  spec.chunk_sites = 1024;
  spec.queue_chunks = 4;
  return spec;
}

class StreamPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("vdstream_test_" + std::string(::testing::UnitTest::GetInstance()
                                               ->current_test_info()
                                               ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    fault::Injector::global().disarm();
    fs::remove_all(dir_);
  }

  fs::path dir_;
};

TEST_F(StreamPipelineTest, ResultIsInvariantToChunkSizeAndQueueDepth) {
  StreamSpec coarse = small_spec();
  coarse.chunk_sites = 8192;
  coarse.queue_chunks = 8;
  StreamSpec fine = small_spec();
  fine.chunk_sites = 257;  // deliberately not a divisor of anything
  fine.queue_chunks = 1;

  const StreamResult a = stream_evaluate(coarse);
  const StreamResult b = stream_evaluate(fine);
  EXPECT_EQ(a.cm, b.cm);
  EXPECT_EQ(a.sites, b.sites);
  EXPECT_EQ(a.sites, coarse.total_sites);
  // The stream exercised all four confusion cells at this size.
  EXPECT_GT(a.cm.tp, 0u);
  EXPECT_GT(a.cm.fp, 0u);
  EXPECT_GT(a.cm.tn, 0u);
  EXPECT_GT(a.cm.fn, 0u);
}

TEST_F(StreamPipelineTest, RepeatedRunsAreBitIdentical) {
  const StreamSpec spec = small_spec();
  const StreamResult a = stream_evaluate(spec);
  const StreamResult b = stream_evaluate(spec);
  EXPECT_EQ(a.cm, b.cm);
  EXPECT_EQ(a.sites, b.sites);
  EXPECT_EQ(a.chunks, b.chunks);
}

TEST_F(StreamPipelineTest, CheckpointIsPrefixStableAcrossTotalSites) {
  // The 10^4 checkpoint of a 2*10^4-site stream must equal a standalone
  // 10^4-site stream: per-service seeding makes prefixes independent of
  // the declared total.
  const std::vector<std::uint64_t> cps = {10'000};
  const StreamResult large = stream_evaluate(small_spec(20'000), cps);
  const StreamResult small = stream_evaluate(small_spec(10'000));
  ASSERT_EQ(large.checkpoints.size(), 1u);
  EXPECT_EQ(large.checkpoints[0].sites, 10'000u);
  EXPECT_EQ(large.checkpoints[0].cm, small.cm);
}

TEST_F(StreamPipelineTest, CheckpointsAreSortedDedupedAndClamped) {
  // Unordered, duplicated, and past-the-end checkpoint requests: the
  // result lists each in-range value once, ascending; the final counts
  // equal the last checkpoint when it lands on total_sites.
  const std::vector<std::uint64_t> cps = {15'000, 5'000, 5'000, 20'000,
                                          999'999'999};
  const StreamResult result = stream_evaluate(small_spec(20'000), cps);
  ASSERT_EQ(result.checkpoints.size(), 3u);
  EXPECT_EQ(result.checkpoints[0].sites, 5'000u);
  EXPECT_EQ(result.checkpoints[1].sites, 15'000u);
  EXPECT_EQ(result.checkpoints[2].sites, 20'000u);
  EXPECT_EQ(result.checkpoints[2].cm, result.cm);
  // Monotone growth: each snapshot's counts are componentwise ≤ the next.
  for (std::size_t i = 1; i < result.checkpoints.size(); ++i) {
    EXPECT_LE(result.checkpoints[i - 1].cm.tp, result.checkpoints[i].cm.tp);
    EXPECT_LE(result.checkpoints[i - 1].cm.fp, result.checkpoints[i].cm.fp);
    EXPECT_LE(result.checkpoints[i - 1].cm.tn, result.checkpoints[i].cm.tn);
    EXPECT_LE(result.checkpoints[i - 1].cm.fn, result.checkpoints[i].cm.fn);
  }
}

TEST_F(StreamPipelineTest, ConsumerFoldMatchesAnIndependentFoldOfTheLog) {
  // Record a stream, then re-fold the raw log records with the plain
  // accumulate() helper: the concurrent pipeline must agree with the
  // single-threaded reference fold.
  const StreamSpec spec = small_spec();
  const fs::path log = dir_ / "stream.vdrlog";
  StreamResult live;
  {
    ReportLogWriter writer(log);
    StreamIo io;
    io.record = &writer;
    live = stream_evaluate(spec, {}, io);
    writer.close();
  }

  core::ConfusionMatrix folded;
  std::uint64_t folded_sites = 0;
  ReportLogReader reader(log);
  std::optional<LogFrame> frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(frame->kind, LogFrame::Kind::kSegment);
  EXPECT_EQ(frame->segment_tag, spec.total_sites);
  while ((frame = reader.next()).has_value()) {
    ASSERT_EQ(frame->kind, LogFrame::Kind::kChunk);
    folded_sites += frame->chunk.records.size();
    accumulate(frame->chunk, folded);
  }
  EXPECT_EQ(folded, live.cm);
  EXPECT_EQ(folded_sites, live.sites);
}

TEST_F(StreamPipelineTest, ReplayReproducesTheRecordedStreamExactly) {
  const StreamSpec spec = small_spec();
  const std::vector<std::uint64_t> cps = {5'000, 15'000};
  const fs::path log = dir_ / "stream.vdrlog";
  StreamResult recorded;
  {
    ReportLogWriter writer(log);
    StreamIo io;
    io.record = &writer;
    recorded = stream_evaluate(spec, cps, io);
    writer.close();
  }

  ReportLogReader reader(log);
  StreamIo io;
  io.replay = &reader;
  const StreamResult replayed = stream_evaluate(spec, cps, io);
  EXPECT_EQ(replayed.cm, recorded.cm);
  EXPECT_EQ(replayed.sites, recorded.sites);
  EXPECT_EQ(replayed.chunks, recorded.chunks);
  ASSERT_EQ(replayed.checkpoints.size(), recorded.checkpoints.size());
  for (std::size_t i = 0; i < replayed.checkpoints.size(); ++i) {
    EXPECT_EQ(replayed.checkpoints[i].sites, recorded.checkpoints[i].sites);
    EXPECT_EQ(replayed.checkpoints[i].cm, recorded.checkpoints[i].cm);
  }
}

TEST_F(StreamPipelineTest, ReplayRejectsAMismatchedSpec) {
  const StreamSpec spec = small_spec();
  const fs::path log = dir_ / "stream.vdrlog";
  {
    ReportLogWriter writer(log);
    StreamIo io;
    io.record = &writer;
    (void)stream_evaluate(spec, {}, io);
    writer.close();
  }

  StreamSpec wrong = spec;
  wrong.total_sites = spec.total_sites * 2;  // log's segment tag disagrees
  ReportLogReader reader(log);
  StreamIo io;
  io.replay = &reader;
  EXPECT_THROW((void)stream_evaluate(wrong, {}, io), std::runtime_error);
}

TEST_F(StreamPipelineTest, BothIoEndpointsIsInvalid) {
  const fs::path log = dir_ / "stream.vdrlog";
  ReportLogWriter writer(log);
  writer.close();
  ReportLogWriter writer2(dir_ / "other.vdrlog");
  ReportLogReader reader(log);
  StreamIo io;
  io.record = &writer2;
  io.replay = &reader;
  EXPECT_THROW((void)stream_evaluate(small_spec(), {}, io),
               std::invalid_argument);
  writer2.close();
}

TEST_F(StreamPipelineTest, BadSpecIsRejected) {
  StreamSpec spec = small_spec();
  spec.chunk_sites = 0;
  EXPECT_THROW((void)stream_evaluate(spec), std::invalid_argument);
  spec = small_spec();
  spec.queue_chunks = 0;
  EXPECT_THROW((void)stream_evaluate(spec), std::invalid_argument);
  spec = small_spec();
  spec.prevalence = 1.5;
  EXPECT_THROW((void)stream_evaluate(spec), std::invalid_argument);
}

TEST_F(StreamPipelineTest, CancellationStopsTheStreamMidFlight) {
  stats::CancellationToken token;
  stats::ScopedCancellationToken install(&token);
  StreamSpec spec = small_spec(50'000'000);  // far more than we will allow
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    token.request_cancel();
  });
  EXPECT_THROW((void)stream_evaluate(spec), stats::Cancelled);
  canceller.join();
}

TEST_F(StreamPipelineTest, ProducerFaultPropagatesWithItsType) {
  fault::Injector::global().arm("stream.produce=throw@3:1");
  EXPECT_THROW((void)stream_evaluate(small_spec()), fault::InjectedFault);
}

TEST_F(StreamPipelineTest, ConsumerFaultPropagatesWithItsType) {
  fault::Injector::global().arm("stream.consume=throw@2:1");
  EXPECT_THROW((void)stream_evaluate(small_spec()), fault::InjectedFault);
}

TEST_F(StreamPipelineTest, RunAfterFaultIsCleanAndBitIdentical) {
  // The retry story: a faulted attempt must leave no residue. Stream once
  // cleanly, fault the next attempt, then stream again — the third run
  // matches the first bit for bit.
  const StreamSpec spec = small_spec();
  const StreamResult before = stream_evaluate(spec);
  fault::Injector::global().arm("stream.produce=io_error@2:1");
  EXPECT_THROW((void)stream_evaluate(spec), std::exception);
  fault::Injector::global().disarm();
  const StreamResult after = stream_evaluate(spec);
  EXPECT_EQ(after.cm, before.cm);
  EXPECT_EQ(after.sites, before.sites);
  EXPECT_EQ(after.chunks, before.chunks);
}

TEST_F(StreamPipelineTest, ServiceSeedIsOrderIndependent) {
  // Hash-mixed, not sequential: permuting service indices permutes seeds
  // without changing any individual value, and distinct indices collide
  // with negligible probability on a small probe set.
  const std::uint64_t a = service_seed(42, 0);
  const std::uint64_t b = service_seed(42, 1);
  const std::uint64_t c = service_seed(42, 1'000'000);
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_NE(a, c);
  EXPECT_EQ(service_seed(42, 1), b);       // pure function
  EXPECT_NE(service_seed(43, 1), b);       // stream seed matters
}

}  // namespace
}  // namespace vdbench::stream
