// ChunkQueue contract tests: FIFO delivery, bounded backpressure without
// spinning, the close/fail/abandon shutdown protocol, and cooperative
// cancellation. Lives in the parallel test binary so the tsan label runs
// the producer/consumer handshakes under the race detector.
#include "stream/chunk_queue.h"

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <thread>

#include "stats/parallel.h"

namespace vdbench::stream {
namespace {

ReportChunk make_chunk(std::uint64_t first_site, std::size_t records) {
  ReportChunk chunk;
  chunk.first_site = first_site;
  for (std::size_t i = 0; i < records; ++i) {
    SiteRecord rec;
    rec.service = static_cast<std::uint32_t>(first_site);
    rec.site = static_cast<std::uint32_t>(i);
    chunk.records.push_back(rec);
  }
  return chunk;
}

TEST(ChunkQueueTest, ZeroCapacityThrows) {
  EXPECT_THROW(ChunkQueue(0), std::invalid_argument);
}

TEST(ChunkQueueTest, DeliversInFifoOrderAndDrainsAfterClose) {
  ChunkQueue queue(4);
  ASSERT_TRUE(queue.push(make_chunk(0, 2)));
  ASSERT_TRUE(queue.push(make_chunk(2, 2)));
  ASSERT_TRUE(queue.push(make_chunk(4, 1)));
  queue.close();

  std::optional<ReportChunk> chunk = queue.pop();
  ASSERT_TRUE(chunk.has_value());
  EXPECT_EQ(chunk->first_site, 0u);
  chunk = queue.pop();
  ASSERT_TRUE(chunk.has_value());
  EXPECT_EQ(chunk->first_site, 2u);
  chunk = queue.pop();
  ASSERT_TRUE(chunk.has_value());
  EXPECT_EQ(chunk->first_site, 4u);
  EXPECT_FALSE(queue.pop().has_value());
  EXPECT_FALSE(queue.pop().has_value());  // stays drained
}

TEST(ChunkQueueTest, PushAfterCloseIsALogicError) {
  ChunkQueue queue(2);
  queue.close();
  EXPECT_THROW((void)queue.push(make_chunk(0, 1)), std::logic_error);
}

TEST(ChunkQueueTest, SlowConsumerBlocksProducerWithoutSpinning) {
  // Capacity 1 and a consumer that sleeps before each pop: every push
  // after the first must block. The no-spin contract is observable in the
  // episode counter — one increment per blocking push, NOT one per
  // condvar wakeup — so a spinning implementation would blow far past the
  // chunk count.
  constexpr std::uint64_t kChunks = 6;
  ChunkQueue queue(1);
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kChunks; ++i)
      ASSERT_TRUE(queue.push(make_chunk(i, 1)));
    queue.close();
  });
  std::uint64_t consumed = 0;
  while (true) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    const std::optional<ReportChunk> chunk = queue.pop();
    if (!chunk.has_value()) break;
    EXPECT_EQ(chunk->first_site, consumed);
    ++consumed;
  }
  producer.join();
  EXPECT_EQ(consumed, kChunks);
  EXPECT_GE(queue.backpressure_waits(), 1u);
  EXPECT_LE(queue.backpressure_waits(), kChunks);
}

TEST(ChunkQueueTest, FailRethrowsOriginalTypeAndDiscardsQueuedChunks) {
  ChunkQueue queue(4);
  ASSERT_TRUE(queue.push(make_chunk(0, 1)));
  queue.fail(std::make_exception_ptr(std::range_error("producer died")));
  // The queued chunk must NOT be served first: a failed stream's partial
  // results are poison.
  EXPECT_THROW((void)queue.pop(), std::range_error);
}

TEST(ChunkQueueTest, AbandonReleasesABlockedProducer) {
  ChunkQueue queue(1);
  ASSERT_TRUE(queue.push(make_chunk(0, 1)));  // queue now full
  std::atomic<int> outcome{-1};
  std::thread producer([&] {
    outcome = queue.push(make_chunk(1, 1)) ? 1 : 0;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(outcome.load(), -1);  // still blocked
  queue.abandon();
  producer.join();
  EXPECT_EQ(outcome.load(), 0);  // returned false, chunk dropped
  // Future pushes return false immediately.
  EXPECT_FALSE(queue.push(make_chunk(2, 1)));
}

TEST(ChunkQueueTest, CancellationUnblocksAWaitingConsumer) {
  stats::CancellationToken token;
  stats::ScopedCancellationToken install(&token);
  ChunkQueue queue(2);
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    token.request_cancel();
  });
  EXPECT_THROW((void)queue.pop(), stats::Cancelled);
  canceller.join();
}

TEST(ChunkQueueTest, CancellationUnblocksABlockedProducer) {
  stats::CancellationToken token;
  stats::ScopedCancellationToken install(&token);
  ChunkQueue queue(1);
  ASSERT_TRUE(queue.push(make_chunk(0, 1)));
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    token.request_cancel();
  });
  EXPECT_THROW((void)queue.push(make_chunk(1, 1)), stats::Cancelled);
  canceller.join();
}

}  // namespace
}  // namespace vdbench::stream
