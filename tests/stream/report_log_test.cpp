// Report-log format tests: round-trip fidelity, peek semantics, digest
// stability, and — the ISSUE's fix item — loud typed rejection of every
// kind of structural damage (truncated tail, bit flip, bad magic, wrong
// version, unknown frame type, implausible record count). A reader that
// silently yields a short stream would defeat record/replay entirely.
#include "stream/report_log.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace vdbench::stream {
namespace {

namespace fs = std::filesystem;

class ReportLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("vdrlog_test_" + std::string(::testing::UnitTest::GetInstance()
                                             ->current_test_info()
                                             ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    path_ = dir_ / "log.vdrlog";
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Two segments (tags 100 and 7) holding three chunks total.
  void write_sample() {
    ReportLogWriter writer(path_);
    writer.begin_segment(100);
    writer.append(make_chunk(0, 5));
    writer.append(make_chunk(5, 3));
    writer.begin_segment(7);
    writer.append(make_chunk(0, 2));
    writer.close();
  }

  static ReportChunk make_chunk(std::uint64_t first_site,
                                std::size_t records) {
    ReportChunk chunk;
    chunk.first_site = first_site;
    for (std::size_t i = 0; i < records; ++i) {
      SiteRecord rec;
      rec.service = static_cast<std::uint32_t>(first_site / 1000);
      rec.site = static_cast<std::uint32_t>(first_site + i);
      rec.truth = (i % 3 == 0) ? static_cast<std::uint8_t>(i % 8) : kCleanSite;
      rec.claimed =
          (i % 2 == 0) ? static_cast<std::uint8_t>(i % 8) : kNoFinding;
      chunk.records.push_back(rec);
    }
    return chunk;
  }

  std::string slurp() const {
    std::ifstream in(path_, std::ios::binary);
    return {std::istreambuf_iterator<char>(in), {}};
  }

  void dump(const std::string& bytes) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  /// Drains the reader; returns how many frames came out before the end.
  static std::size_t drain(ReportLogReader& reader) {
    std::size_t frames = 0;
    while (reader.next().has_value()) ++frames;
    return frames;
  }

  fs::path dir_;
  fs::path path_;
};

TEST_F(ReportLogTest, RoundTripsSegmentsAndChunksExactly) {
  write_sample();

  ReportLogReader reader(path_);
  std::optional<LogFrame> frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->kind, LogFrame::Kind::kSegment);
  EXPECT_EQ(frame->segment_tag, 100u);

  frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(frame->kind, LogFrame::Kind::kChunk);
  EXPECT_EQ(frame->chunk.first_site, 0u);
  ASSERT_EQ(frame->chunk.records.size(), 5u);
  const ReportChunk expect = make_chunk(0, 5);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(frame->chunk.records[i].service, expect.records[i].service);
    EXPECT_EQ(frame->chunk.records[i].site, expect.records[i].site);
    EXPECT_EQ(frame->chunk.records[i].truth, expect.records[i].truth);
    EXPECT_EQ(frame->chunk.records[i].claimed, expect.records[i].claimed);
  }

  frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(frame->kind, LogFrame::Kind::kChunk);
  EXPECT_EQ(frame->chunk.records.size(), 3u);

  frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->kind, LogFrame::Kind::kSegment);
  EXPECT_EQ(frame->segment_tag, 7u);

  frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(frame->kind, LogFrame::Kind::kChunk);
  EXPECT_EQ(frame->chunk.records.size(), 2u);

  // Clean EOF: nullopt, repeatably.
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.next().has_value());
}

TEST_F(ReportLogTest, PeekDoesNotConsume) {
  write_sample();
  ReportLogReader reader(path_);
  const LogFrame* peeked = reader.peek();
  ASSERT_NE(peeked, nullptr);
  EXPECT_EQ(peeked->kind, LogFrame::Kind::kSegment);
  EXPECT_EQ(peeked->segment_tag, 100u);
  // Same frame again from peek, then from next.
  EXPECT_EQ(reader.peek(), peeked);
  const std::optional<LogFrame> frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->segment_tag, 100u);
  // At EOF peek returns nullptr without consuming anything else.
  while (reader.next().has_value()) {
  }
  EXPECT_EQ(reader.peek(), nullptr);
}

TEST_F(ReportLogTest, EmptyLogIsJustAHeader) {
  {
    ReportLogWriter writer(path_);
    writer.close();
  }
  EXPECT_EQ(slurp().size(), 16u);
  ReportLogReader reader(path_);
  EXPECT_FALSE(reader.next().has_value());
}

TEST_F(ReportLogTest, BytesWrittenMatchesFileSize) {
  std::uint64_t reported = 0;
  {
    ReportLogWriter writer(path_);
    writer.begin_segment(1);
    writer.append(make_chunk(0, 4));
    writer.close();
    reported = writer.bytes_written();
  }
  EXPECT_EQ(reported, static_cast<std::uint64_t>(fs::file_size(path_)));
}

TEST_F(ReportLogTest, DigestIsStableAndContentSensitive) {
  write_sample();
  const std::uint64_t digest = file_digest(path_);
  EXPECT_EQ(file_digest(path_), digest);  // stable across reads

  std::string bytes = slurp();
  bytes[bytes.size() / 2] ^= 0x01;
  dump(bytes);
  EXPECT_NE(file_digest(path_), digest);  // one flipped bit moves it
}

TEST_F(ReportLogTest, TruncatedTailThrowsLogCorruptNotShortStream) {
  write_sample();
  const std::string bytes = slurp();
  // Cut mid-way through the final chunk frame's payload.
  dump(bytes.substr(0, bytes.size() - 7));
  ReportLogReader reader(path_);
  EXPECT_THROW(drain(reader), LogCorrupt);
}

TEST_F(ReportLogTest, EveryTruncationPointIsLoud) {
  // The reader must never mistake ANY mid-frame cut for a clean EOF. Walk
  // a range of cut points across the file body; each must either keep the
  // stream whole (cut exactly on a frame boundary) or raise LogCorrupt —
  // but a boundary cut mid-file still loses frames, so require LogCorrupt
  // OR a shorter-but-valid prefix, never a *silent* full-length stream.
  write_sample();
  const std::string bytes = slurp();
  std::size_t full_frames = 0;
  {
    ReportLogReader reader(path_);
    full_frames = drain(reader);
  }
  for (std::size_t cut = 17; cut < bytes.size(); cut += 3) {
    dump(bytes.substr(0, cut));
    ReportLogReader reader(path_);
    try {
      const std::size_t frames = drain(reader);
      EXPECT_LT(frames, full_frames)
          << "cut at " << cut << " silently produced the full stream";
    } catch (const LogCorrupt&) {
      // Loud rejection: exactly the contract.
    }
  }
}

TEST_F(ReportLogTest, ChecksumCatchesAPayloadBitFlip) {
  write_sample();
  std::string bytes = slurp();
  // Flip one payload bit inside the first chunk frame: header(16) +
  // segment frame(17) + chunk type/count/first_site(13) lands in records.
  bytes[16 + 17 + 13 + 4] ^= 0x20;
  dump(bytes);
  ReportLogReader reader(path_);
  EXPECT_THROW(drain(reader), LogCorrupt);
}

TEST_F(ReportLogTest, BadMagicIsRejectedAtOpen) {
  write_sample();
  std::string bytes = slurp();
  bytes[0] = 'X';
  dump(bytes);
  EXPECT_THROW(ReportLogReader reader(path_), LogCorrupt);
}

TEST_F(ReportLogTest, UnsupportedVersionIsRejectedAtOpen) {
  write_sample();
  std::string bytes = slurp();
  bytes[8] = static_cast<char>(kLogFormatVersion + 1);  // u32 LE low byte
  dump(bytes);
  EXPECT_THROW(ReportLogReader reader(path_), LogCorrupt);
}

TEST_F(ReportLogTest, TruncatedHeaderIsRejectedAtOpen) {
  write_sample();
  dump(slurp().substr(0, 9));
  EXPECT_THROW(ReportLogReader reader(path_), LogCorrupt);
}

TEST_F(ReportLogTest, UnknownFrameTypeIsRejected) {
  write_sample();
  std::string bytes = slurp();
  bytes[16] = 0x7F;  // first frame's type byte
  dump(bytes);
  ReportLogReader reader(path_);
  EXPECT_THROW(drain(reader), LogCorrupt);
}

TEST_F(ReportLogTest, ImplausibleRecordCountIsRejected) {
  {
    ReportLogWriter writer(path_);
    writer.close();
  }
  // Hand-craft a chunk frame claiming 2^32-1 records: must be rejected as
  // implausible before the reader tries to allocate 40 GiB.
  std::string bytes = slurp();
  bytes.push_back(0x02);                                   // chunk frame
  for (int i = 0; i < 4; ++i) bytes.push_back('\xFF');     // count
  for (int i = 0; i < 8; ++i) bytes.push_back('\0');       // first_site
  dump(bytes);
  ReportLogReader reader(path_);
  EXPECT_THROW(drain(reader), LogCorrupt);
}

TEST_F(ReportLogTest, CorruptionErrorsCarryTheTypedPrefix) {
  write_sample();
  dump(slurp().substr(0, 20));
  ReportLogReader reader(path_);
  try {
    drain(reader);
    FAIL() << "truncated log drained cleanly";
  } catch (const LogCorrupt& error) {
    EXPECT_EQ(std::string(error.what()).rfind("report log corrupt: ", 0), 0u)
        << error.what();
  }
}

}  // namespace
}  // namespace vdbench::stream
